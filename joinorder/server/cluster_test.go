package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"milpjoin/internal/workload"
	"milpjoin/joinorder"
	"milpjoin/joinorder/cache"
	"milpjoin/joinorder/cache/persist"
	"milpjoin/joinorder/cluster"
)

// countingSolver wraps the real optimizer with a solve counter, so
// cluster tests can assert how many solves the whole ring performed.
type countingSolver struct{ n atomic.Int64 }

func (c *countingSolver) fn(ctx context.Context, q *joinorder.Query, opts joinorder.Options) (*joinorder.Result, error) {
	c.n.Add(1)
	return joinorder.Optimize(ctx, q, opts)
}

// testCluster is an in-process joinoptd ring: every node is a full
// Server with its own Router, all listening on real TCP ports (the ring
// membership must carry final URLs, so listeners are bound first).
type testCluster struct {
	peers   []cluster.Peer
	servers []*Server
	https   []*httptest.Server
	routers []*cluster.Router
	solves  []*countingSolver
}

func newTestCluster(t testing.TB, n int, mutate func(i int, cfg *Config)) *testCluster {
	t.Helper()
	listeners := make([]net.Listener, n)
	peers := make([]cluster.Peer, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		peers[i] = cluster.Peer{ID: fmt.Sprintf("n%d", i), URL: "http://" + l.Addr().String()}
	}
	tc := &testCluster{peers: peers}
	for i := range listeners {
		rt, err := cluster.New(cluster.Config{
			Self:          peers[i].ID,
			Peers:         peers,
			Replicas:      2,
			ProbeInterval: -1, // deterministic: health changes only via Forward failures
			Logger:        testLogger(t),
		})
		if err != nil {
			t.Fatal(err)
		}
		cs := &countingSolver{}
		cfg := Config{
			Cluster: rt,
			Cache:   cache.Config{Optimize: cs.fn},
			Logger:  testLogger(t),
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		s := mustServer(t, cfg)
		ts := &httptest.Server{
			Listener: listeners[i],
			Config:   &http.Server{Handler: s},
		}
		ts.Start()
		tc.servers = append(tc.servers, s)
		tc.https = append(tc.https, ts)
		tc.routers = append(tc.routers, rt)
		tc.solves = append(tc.solves, cs)
	}
	t.Cleanup(func() {
		for i := range tc.servers {
			tc.https[i].Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			tc.servers[i].Drain(ctx) //nolint:errcheck // best-effort teardown
			cancel()
			tc.routers[i].Close()
		}
	})
	return tc
}

func (tc *testCluster) totalSolves() int64 {
	var n int64
	for _, cs := range tc.solves {
		n += cs.n.Load()
	}
	return n
}

// owner resolves which node the ring assigns a query to.
func (tc *testCluster) owner(t testing.TB, q *joinorder.Query) cluster.Peer {
	t.Helper()
	ce, err := cache.Canonicalize(q, cache.Exact)
	if err != nil {
		t.Fatal(err)
	}
	return tc.routers[0].Ring().Owner(ce.Key)
}

// clusterQuery builds one cacheable (proven-optimal) request body and its
// query object.
func clusterQuery(t testing.TB, seed int64) (*joinorder.Query, []byte) {
	t.Helper()
	q := workload.Generate(workload.Chain, 8, seed, workload.Config{})
	body, err := json.Marshal(&OptimizeRequest{Query: q, Strategy: "dp-leftdeep", Timeout: "10s"})
	if err != nil {
		t.Fatal(err)
	}
	return q, body
}

// TestClusterSingleSolvePerFingerprint is the tentpole invariant: under a
// concurrent storm of identical queries sprayed across all three nodes,
// the ring routes every copy to one owner, coalescing and caching collapse
// the copies, and the whole cluster solves each fingerprint exactly once.
func TestClusterSingleSolvePerFingerprint(t *testing.T) {
	tc := newTestCluster(t, 3, nil)

	const distinct = 6
	const copies = 8
	queries := make([]*joinorder.Query, distinct)
	bodies := make([][]byte, distinct)
	for i := range queries {
		queries[i], bodies[i] = clusterQuery(t, int64(i+1))
	}

	type answer struct {
		status int
		node   string
		out    OptimizeResponse
	}
	answers := make([]answer, distinct*copies)
	var wg sync.WaitGroup
	for i := 0; i < distinct; i++ {
		for c := 0; c < copies; c++ {
			wg.Add(1)
			go func(i, c int) {
				defer wg.Done()
				ts := tc.https[(i+c)%len(tc.https)] // spray across nodes
				resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					t.Errorf("query %d copy %d: %v", i, c, err)
					return
				}
				defer resp.Body.Close()
				a := &answers[i*copies+c]
				a.status = resp.StatusCode
				a.node = resp.Header.Get(NodeHeader)
				if resp.StatusCode == http.StatusOK {
					if err := json.NewDecoder(resp.Body).Decode(&a.out); err != nil {
						t.Errorf("query %d copy %d: decoding: %v", i, c, err)
					}
				}
			}(i, c)
		}
	}
	wg.Wait()

	for i := 0; i < distinct; i++ {
		owner := tc.owner(t, queries[i])
		for c := 0; c < copies; c++ {
			a := answers[i*copies+c]
			if a.status != http.StatusOK {
				t.Fatalf("query %d copy %d: status %d", i, c, a.status)
			}
			if a.out.Result == nil || a.out.Result.Plan == nil {
				t.Fatalf("query %d copy %d carries no plan", i, c)
			}
			if a.node != owner.ID {
				t.Errorf("query %d copy %d answered by %s, ring owner is %s", i, c, a.node, owner.ID)
			}
		}
	}
	if got := tc.totalSolves(); got != distinct {
		t.Errorf("cluster performed %d solves for %d distinct fingerprints", got, distinct)
	}

	// Misses that hashed elsewhere were forwarded, not solved locally.
	var forwards int64
	for _, rt := range tc.routers {
		forwards += rt.Stats().Forwards
	}
	if forwards == 0 {
		t.Error("no forwards recorded; the spray should cross shard boundaries")
	}

	// Replication: each owner announced its fresh entries to both ring
	// successors, so with three nodes every exact entry lands everywhere.
	for _, rt := range tc.routers {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := rt.Flush(ctx); err != nil {
			t.Fatalf("replication flush: %v", err)
		}
		cancel()
	}
	for i, s := range tc.servers {
		cs := s.Cache().Stats()
		if cs.Entries != distinct {
			t.Errorf("node %d holds %d exact entries after replication, want %d", i, cs.Entries, distinct)
		}
		if cs.Imported == 0 {
			t.Errorf("node %d imported no replicated entries", i)
		}
	}
}

// TestClusterFailOpen kills a query's owning node and asserts the others
// still answer it — locally, after the forward fails and demotes the peer.
func TestClusterFailOpen(t *testing.T) {
	tc := newTestCluster(t, 3, nil)

	// Find a query owned by a node other than n0 so n0 must forward.
	var q *joinorder.Query
	var body []byte
	var owner cluster.Peer
	for seed := int64(1); seed < 64; seed++ {
		q, body = clusterQuery(t, seed)
		if owner = tc.owner(t, q); owner.ID != tc.peers[0].ID {
			break
		}
	}
	if owner.ID == tc.peers[0].ID {
		t.Fatal("no query hashed away from n0 in 64 seeds")
	}
	var ownerIdx int
	for i, p := range tc.peers {
		if p.ID == owner.ID {
			ownerIdx = i
		}
	}
	tc.https[ownerIdx].Close()

	resp, out := postOptimize(t, tc.https[0], body)
	if resp.StatusCode != http.StatusOK || out == nil || out.Result == nil {
		t.Fatalf("fail-open answer: status %d, %+v", resp.StatusCode, out)
	}
	if node := resp.Header.Get(NodeHeader); node != tc.peers[0].ID {
		t.Errorf("fail-open served by %q, want local node %q", node, tc.peers[0].ID)
	}
	if tc.solves[0].n.Load() != 1 {
		t.Errorf("local node performed %d solves, want 1", tc.solves[0].n.Load())
	}
	// The failed forward demoted the dead peer, so the next request
	// routes local immediately instead of paying another dial.
	if tc.routers[0].Healthy(owner.ID) {
		t.Error("dead owner still marked healthy after failed forward")
	}
	if _, remote := tc.routers[0].Route("anything-owned-by-"+owner.ID); remote {
		// Route may pick a different owner for this key; only assert the
		// original query now stays local.
		ce, err := cache.Canonicalize(q, cache.Exact)
		if err != nil {
			t.Fatal(err)
		}
		if _, remote := tc.routers[0].Route(ce.Key); remote {
			t.Error("query still routes to the dead owner")
		}
	}
}

// TestClusterRestartWarmHitRate drains a persistent node, restarts it on
// the same log, and asserts the warm cache answers without re-solving.
func TestClusterRestartWarmHitRate(t *testing.T) {
	dir := t.TempDir()
	open := func() (*persist.Log, *countingSolver, *Server, *httptest.Server) {
		plog, err := persist.Open(persist.Config{Dir: dir, Policy: persist.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		cs := &countingSolver{}
		s := mustServer(t, Config{Cache: cache.Config{Optimize: cs.fn, Persist: plog}})
		return plog, cs, s, httptest.NewServer(s)
	}

	plog, cs, s, ts := open()
	const distinct = 8
	bodies := make([][]byte, distinct)
	for i := range bodies {
		_, bodies[i] = clusterQuery(t, int64(i+1))
		if resp, out := postOptimize(t, ts, bodies[i]); resp.StatusCode != http.StatusOK || out.CacheHit {
			t.Fatalf("seed request %d: status %d, hit=%v", i, resp.StatusCode, out != nil && out.CacheHit)
		}
	}
	if cs.n.Load() != distinct {
		t.Fatalf("first generation solved %d, want %d", cs.n.Load(), distinct)
	}
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := plog.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: same log, fresh process state.
	plog2, cs2, s2, ts2 := open()
	defer func() {
		ts2.Close()
		s2.Drain(ctx) //nolint:errcheck // best-effort teardown
		plog2.Close()
	}()
	hits := 0
	for i, body := range bodies {
		resp, out := postOptimize(t, ts2, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm request %d: status %d", i, resp.StatusCode)
		}
		if out.CacheHit {
			hits++
		}
	}
	if rate := float64(hits) / distinct; rate < 0.95 {
		t.Errorf("warm hit rate %.2f, want ≥ 0.95", rate)
	}
	if cs2.n.Load() != 0 {
		t.Errorf("restarted node re-solved %d queries", cs2.n.Load())
	}
	if replayed := s2.Cache().Stats().Replayed; replayed == 0 {
		t.Error("restart replayed nothing")
	}
}
