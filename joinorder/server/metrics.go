package server

import (
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"milpjoin/joinorder/cache"
	"milpjoin/joinorder/cluster"
)

// Snapshot is a point-in-time view of the daemon's counters, served as
// JSON on /varz (under the expvar key "joinoptd") and as Prometheus text
// on /metrics.
type Snapshot struct {
	Requests    int64 `json:"requests"`
	OK          int64 `json:"ok"`
	Degraded    int64 `json:"degraded"`
	Shed        int64 `json:"shed"`
	Rejected    int64 `json:"rejected"`
	RateLimited int64 `json:"rate_limited"`
	BadRequest  int64 `json:"bad_request"`
	Canceled    int64 `json:"canceled"`
	Timeouts    int64 `json:"timeouts"`
	Failed      int64 `json:"failed"`
	DrainReject int64 `json:"drain_rejected"`

	Streams       int64 `json:"sse_streams"`
	EventsRelayed int64 `json:"sse_events_relayed"`
	EventsDropped int64 `json:"sse_events_dropped"`

	Solves        int64   `json:"solves"`
	Portfolio     int64   `json:"portfolio_requests"`
	QueueWaitSec  float64 `json:"queue_wait_sec_total"`
	SolveSec      float64 `json:"solve_sec_total"`
	RunningSolves int     `json:"running_solves"`
	QueuedJobs    int     `json:"queued_requests"`
	Draining      bool    `json:"draining"`

	SolverNodes  int64 `json:"solver_nodes"`
	SimplexIters int64 `json:"solver_simplex_iters"`
	Incumbents   int64 `json:"solver_incumbents"`

	Batches    int64 `json:"batches"`
	BatchItems int64 `json:"batch_items"`

	Cache cache.Stats `json:"cache"`
	// Cluster is present only on clustered servers.
	Cluster *cluster.Stats `json:"cluster,omitempty"`
}

// Snapshot captures the current counters.
func (s *Server) Snapshot() Snapshot {
	running, queued := s.adm.load()
	var cl *cluster.Stats
	if s.cfg.Cluster != nil {
		cs := s.cfg.Cluster.Stats()
		cl = &cs
	}
	return Snapshot{
		Requests:      s.ctr.requests.Load(),
		OK:            s.ctr.ok.Load(),
		Degraded:      s.ctr.degraded.Load(),
		Shed:          s.ctr.shed.Load(),
		Rejected:      s.ctr.rejected.Load(),
		RateLimited:   s.ctr.rateLimited.Load(),
		BadRequest:    s.ctr.badRequest.Load(),
		Canceled:      s.ctr.canceled.Load(),
		Timeouts:      s.ctr.timeouts.Load(),
		Failed:        s.ctr.failed.Load(),
		DrainReject:   s.ctr.drainReject.Load(),
		Streams:       s.ctr.streams.Load(),
		EventsRelayed: s.ctr.eventsSent.Load(),
		EventsDropped: s.ctr.eventsDrop.Load(),
		Solves:        s.ctr.solves.Load(),
		Portfolio:     s.ctr.portfolio.Load(),
		QueueWaitSec:  time.Duration(s.ctr.queueNanos.Load()).Seconds(),
		SolveSec:      time.Duration(s.ctr.solveNanos.Load()).Seconds(),
		RunningSolves: running,
		QueuedJobs:    queued,
		Draining:      s.draining.Load(),
		SolverNodes:   s.ctr.solverNodes.Load(),
		SimplexIters:  s.ctr.simplexIters.Load(),
		Incumbents:    s.ctr.incumbents.Load(),
		Batches:       s.ctr.batches.Load(),
		BatchItems:    s.ctr.batchItems.Load(),
		Cache:         s.co.Stats(),
		Cluster:       cl,
	}
}

// handleVarz serves GET /varz through the process-wide expvar registry —
// the same document /debug/vars would show — including the "joinoptd"
// var this package publishes for all live servers.
func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	expvar.Handler().ServeHTTP(w, r)
}

// handleMetrics serves GET /metrics in Prometheus text exposition format,
// built from the same snapshot as /varz.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	fmt.Fprintf(w, "# HELP joinoptd_responses_total Optimize responses by outcome.\n# TYPE joinoptd_responses_total counter\n")
	for _, o := range []struct {
		label string
		v     int64
	}{
		{"ok", snap.OK - snap.Degraded},
		{"degraded", snap.Degraded},
		{"rejected", snap.Rejected},
		{"rate_limited", snap.RateLimited},
		{"bad_request", snap.BadRequest},
		{"canceled", snap.Canceled},
		{"timeout", snap.Timeouts},
		{"failed", snap.Failed},
		{"draining", snap.DrainReject},
	} {
		fmt.Fprintf(w, "joinoptd_responses_total{outcome=%q} %d\n", o.label, o.v)
	}
	counter("joinoptd_requests_total", "Optimize requests received.", snap.Requests)
	counter("joinoptd_shed_total", "Requests shed by the saturated admission queue (answered degraded).", snap.Shed)
	counter("joinoptd_solves_total", "Solves dispatched to a worker.", snap.Solves)
	counter("joinoptd_portfolio_requests_total", "strategy=auto requests admitted with portfolio weight.", snap.Portfolio)
	counter("joinoptd_sse_streams_total", "Streaming optimize requests.", snap.Streams)
	counter("joinoptd_sse_events_relayed_total", "Solver events relayed to SSE clients.", snap.EventsRelayed)
	counter("joinoptd_sse_events_dropped_total", "Solver events dropped on slow SSE clients.", snap.EventsDropped)
	gauge("joinoptd_queue_wait_seconds_total", "Total admission-queue wait.", snap.QueueWaitSec)
	gauge("joinoptd_solve_seconds_total", "Total in-solve wall time.", snap.SolveSec)
	gauge("joinoptd_running_solves", "Solves currently holding a worker.", float64(snap.RunningSolves))
	gauge("joinoptd_queued_requests", "Requests waiting in the admission queue.", float64(snap.QueuedJobs))
	gauge("joinoptd_draining", "1 while the server drains.", boolGauge(snap.Draining))
	counter("joinoptd_solver_nodes_total", "Branch-and-bound nodes explored, summed over solves.", snap.SolverNodes)
	counter("joinoptd_solver_simplex_iters_total", "Simplex iterations, summed over solves.", snap.SimplexIters)
	counter("joinoptd_solver_incumbents_total", "Incumbent improvements, summed over solves.", snap.Incumbents)

	counter("joinoptd_cache_hits_total", "Requests served from the exact plan cache.", snap.Cache.Hits)
	counter("joinoptd_cache_misses_total", "Requests that fell through to a solve.", snap.Cache.Misses)
	counter("joinoptd_cache_coalesced_total", "Requests that joined an identical in-flight solve.", snap.Cache.Coalesced)
	counter("joinoptd_cache_warm_starts_total", "Misses warm-started from a shape-matched cached plan.", snap.Cache.WarmStarts)
	counter("joinoptd_cache_degraded_total", "Tight-deadline requests served a fallback plan.", snap.Cache.Degraded)
	counter("joinoptd_cache_refines_total", "Background refine solves completed.", snap.Cache.Refines)
	counter("joinoptd_cache_evicted_total", "Entries evicted by the LRU bound.", snap.Cache.Evicted)
	counter("joinoptd_cache_expired_total", "Entries expired by TTL.", snap.Cache.Expired)
	counter("joinoptd_cache_replayed_total", "Entries loaded from the persistent log at startup.", snap.Cache.Replayed)
	counter("joinoptd_cache_replay_evicted_total", "Replayed entries evicted again by the LRU bounds during startup.", snap.Cache.ReplayEvicted)
	counter("joinoptd_cache_imported_total", "Entries accepted from cluster peers.", snap.Cache.Imported)
	counter("joinoptd_cache_invalidated_total", "Entries removed by explicit invalidation.", snap.Cache.Invalidated)
	counter("joinoptd_cache_feedback_refreshes_total", "Corrected-cardinality feedback refreshes.", snap.Cache.FeedbackRefreshes)
	counter("joinoptd_cache_persist_errors_total", "Failed persistent-log writes.", snap.Cache.PersistErrors)
	gauge("joinoptd_cache_entries", "Exact cache entries resident.", float64(snap.Cache.Entries))
	gauge("joinoptd_cache_donors", "Warm-start donor entries resident.", float64(snap.Cache.Donors))
	gauge("joinoptd_cache_bytes", "Approximate resident bytes of the exact cache.", float64(snap.Cache.Bytes))
	gauge("joinoptd_cache_hit_rate", "Hits over cacheable lookups.", snap.Cache.HitRate())

	counter("joinoptd_batches_total", "Batch optimize requests received.", snap.Batches)
	counter("joinoptd_batch_items_total", "Individual queries across all batches.", snap.BatchItems)

	if cl := snap.Cluster; cl != nil {
		gauge("joinoptd_cluster_peers", "Configured cluster membership size.", float64(cl.Peers))
		gauge("joinoptd_cluster_peers_up", "Peers currently passing health probes.", float64(cl.PeersUp))
		counter("joinoptd_cluster_routed_local_total", "Requests served by this shard.", cl.RoutedLocal)
		counter("joinoptd_cluster_forwards_total", "Requests forwarded to their owning peer.", cl.Forwards)
		counter("joinoptd_cluster_forward_errors_total", "Forwards that failed open to a local solve.", cl.ForwardErrors)
		counter("joinoptd_cluster_replicated_total", "Cache entry copies shipped to peers.", cl.Replicated)
		counter("joinoptd_cluster_replicate_errors_total", "Failed replication posts.", cl.ReplicateErrors)
		counter("joinoptd_cluster_replicate_dropped_total", "Replication entries dropped on a full queue.", cl.ReplicateDropped)
		counter("joinoptd_cluster_probe_fails_total", "Failed peer health probes.", cl.ProbeFails)
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// The expvar bridge: one process-wide "joinoptd" var aggregating every
// live Server (expvar.Publish panics on duplicates, so servers register
// into a shared map instead of publishing individually — httptest servers
// in the same process coexist).
var (
	varzOnce    sync.Once
	varzMu      sync.Mutex
	varzNextID  int
	varzServers = map[*Server]string{}
)

func registerVarz(s *Server) {
	varzOnce.Do(func() {
		expvar.Publish("joinoptd", expvar.Func(varzValue))
	})
	varzMu.Lock()
	defer varzMu.Unlock()
	varzNextID++
	varzServers[s] = fmt.Sprintf("server%d", varzNextID)
}

func unregisterVarz(s *Server) {
	varzMu.Lock()
	defer varzMu.Unlock()
	delete(varzServers, s)
}

// varzValue renders the registered servers: one snapshot when a single
// server is live (the production case), a name→snapshot map otherwise.
func varzValue() any {
	varzMu.Lock()
	type entry struct {
		name string
		srv  *Server
	}
	entries := make([]entry, 0, len(varzServers))
	for srv, name := range varzServers {
		entries = append(entries, entry{name, srv})
	}
	varzMu.Unlock()
	if len(entries) == 1 {
		return entries[0].srv.Snapshot()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	out := make(map[string]Snapshot, len(entries))
	for _, e := range entries {
		out[e.name] = e.srv.Snapshot()
	}
	return out
}
