package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"milpjoin/internal/workload"
	"milpjoin/joinorder"
	"milpjoin/joinorder/cache"
)

// loadClient is an HTTP client sized for hundreds of concurrent
// connections to one host.
func loadClient() *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 1024
	tr.MaxIdleConnsPerHost = 1024
	return &http.Client{Transport: tr, Timeout: 30 * time.Second}
}

// TestLoadSmokeConcurrentInflight is the admission-control acceptance
// check: the daemon holds ≥ 500 concurrent in-flight requests — verified
// server-side, workers running plus requests queued — and answers every
// single one with a plan.
func TestLoadSmokeConcurrentInflight(t *testing.T) {
	const clients = 500

	// The underlying solves block until released, so every request piles
	// up inside the server: a few holding workers, the rest queued.
	release := make(chan struct{})
	s := mustServer(t, Config{
		MaxWorkers: 8,
		QueueDepth: clients, // nothing sheds in this phase
		Cache: cache.Config{
			Optimize: func(ctx context.Context, q *joinorder.Query, opts joinorder.Options) (*joinorder.Result, error) {
				select {
				case <-release:
				case <-ctx.Done():
					return nil, fmt.Errorf("%w: %w", joinorder.ErrCanceled, ctx.Err())
				}
				return &joinorder.Result{
					Strategy: opts.Strategy, Status: joinorder.StatusFeasible,
					Plan: fakePlan(q.NumTables()), Cost: 1,
				}, nil
			},
		},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := loadClient()

	// 50 distinct queries × 10 clients each: coalescing dedups solves but
	// every waiter still occupies an admission slot.
	bodies := make([][]byte, 50)
	for i := range bodies {
		bodies[i] = queryBody(t, workload.Chain, 5+i%8, int64(i), func(r *OptimizeRequest) {
			r.Strategy = "milp"
			r.Timeout = "25s"
		})
	}

	var (
		wg       sync.WaitGroup
		answered atomic.Int64
		failed   atomic.Int64
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(bodies[i%len(bodies)]))
			if err != nil {
				failed.Add(1)
				return
			}
			defer resp.Body.Close()
			var out OptimizeResponse
			if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&out) == nil &&
				out.Result != nil && out.Result.Plan != nil {
				answered.Add(1)
			} else {
				failed.Add(1)
			}
		}(i)
	}

	// Wait until all 500 are in flight inside the server, then release.
	deadline := time.Now().Add(20 * time.Second)
	for {
		running, queued := s.adm.load()
		if running+queued >= clients {
			t.Logf("peak in-flight: %d running + %d queued", running, queued)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d running + %d queued after 20s, want ≥ %d", running, queued, clients)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := answered.Load(); got != clients || failed.Load() != 0 {
		t.Fatalf("answered=%d failed=%d, want %d/0", got, failed.Load(), clients)
	}
}

// TestLoadSmokeOverloadEveryRequestAnswered drives a deliberately
// under-provisioned server far past saturation and checks the shed
// contract: every request receives a plan, a degraded plan, or a 429 —
// never a hang, never an unexplained failure.
func TestLoadSmokeOverloadEveryRequestAnswered(t *testing.T) {
	const clients = 300

	s := mustServer(t, Config{
		MaxWorkers: 2,
		QueueDepth: 8,
		Cache: cache.Config{
			Optimize: func(ctx context.Context, q *joinorder.Query, opts joinorder.Options) (*joinorder.Result, error) {
				if opts.Strategy != "greedy" { // fallback answers instantly
					select {
					case <-time.After(5 * time.Millisecond):
					case <-ctx.Done():
						return nil, fmt.Errorf("%w: %w", joinorder.ErrCanceled, ctx.Err())
					}
				}
				return &joinorder.Result{
					Strategy: opts.Strategy, Status: joinorder.StatusFeasible,
					Plan: fakePlan(q.NumTables()), Cost: 1,
				}, nil
			},
			DegradeUnder:     20 * time.Millisecond,
			BackgroundBudget: 100 * time.Millisecond,
		},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := loadClient()

	var (
		wg                      sync.WaitGroup
		full, degraded, shed429 atomic.Int64
		other                   atomic.Int64
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := queryBody(t, workload.Star, 5+i%10, int64(i), func(r *OptimizeRequest) {
				r.Strategy = "milp"
				r.Timeout = "5s"
				if i%7 == 0 { // a slice of strict clients that refuse degradation
					no := false
					r.AllowDegraded = &no
				}
			})
			resp, err := client.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
			if err != nil {
				other.Add(1)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				var out OptimizeResponse
				if json.NewDecoder(resp.Body).Decode(&out) != nil || out.Result == nil || out.Result.Plan == nil {
					other.Add(1)
				} else if out.Degraded {
					degraded.Add(1)
				} else {
					full.Add(1)
				}
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					other.Add(1)
				} else {
					shed429.Add(1)
				}
			default:
				other.Add(1)
			}
		}(i)
	}
	wg.Wait()

	t.Logf("full=%d degraded=%d 429=%d other=%d", full.Load(), degraded.Load(), shed429.Load(), other.Load())
	if other.Load() != 0 {
		t.Fatalf("%d requests got an answer outside the contract", other.Load())
	}
	if full.Load()+degraded.Load()+shed429.Load() != clients {
		t.Fatalf("answered %d of %d", full.Load()+degraded.Load()+shed429.Load(), clients)
	}
	if degraded.Load() == 0 {
		t.Error("overload produced no degraded plans — shed path untested")
	}

	// Background refines from the degraded path must drain cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after overload: %v", err)
	}
}
