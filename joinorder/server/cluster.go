package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"

	"milpjoin/joinorder/cache"
	"milpjoin/joinorder/cluster"
)

// NodeHeader names the node that produced a response, for observability
// and cluster tests. Forwarded answers carry the owner's ID through the
// proxy hop.
const NodeHeader = "X-Joinopt-Node"

// routingFingerprint extracts the canonical query fingerprint from a
// full cache key ("e|<options>|<fp>" or "s|<options>|<fp>"): the segment
// after the last separator. Routing on the fingerprint alone — not the
// options digest — keeps every variant of one query on one node, so its
// donors and exact entries share a shard.
func routingFingerprint(key string) string {
	if i := strings.LastIndexByte(key, '|'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// tryForward routes one prepared optimize request through the cluster:
// when another healthy node owns the query's fingerprint, the raw body is
// proxied there and the peer's response relayed verbatim. It reports
// whether the response was written. A false return — no cluster, a
// forwarded arrival, an uncacheable query, local ownership, or a failed
// forward (fail open) — means the caller must serve locally.
func (s *Server) tryForward(w http.ResponseWriter, r *http.Request, pr *prepared) bool {
	rt := s.cfg.Cluster
	if rt == nil {
		return false
	}
	w.Header().Set(NodeHeader, rt.Self().ID)
	if pr.forwarded {
		rt.ServedLocal()
		return false
	}
	ce, err := cache.Canonicalize(pr.q, cache.Exact)
	if err != nil {
		// Uncacheable queries gain nothing from shard affinity.
		return false
	}
	owner, remote := rt.Route(ce.Key)
	if !remote {
		return false
	}
	resp, err := rt.Forward(r.Context(), owner, "/v1/optimize", r.Header, pr.raw)
	if err != nil {
		// The peer is unreachable: answer here rather than failing the
		// request. Forward already demoted the peer's health.
		s.log.Warn("cluster forward failed; serving locally",
			"peer", owner.ID, "req", pr.id, "err", err)
		return false
	}
	defer resp.Body.Close()
	relayResponse(w, resp, owner)
	return true
}

// relayResponse copies a peer's HTTP answer to the client.
func relayResponse(w http.ResponseWriter, resp *http.Response, owner cluster.Peer) {
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if v := resp.Header.Get(NodeHeader); v != "" {
		w.Header().Set(NodeHeader, v)
	} else {
		w.Header().Set(NodeHeader, owner.ID)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // client gone; nothing to do
}

// handleClusterEntry is POST /v1/cluster/entry: the peer-to-peer cache
// replication ingest. The body is one cluster.Entry; a valid entry lands
// in the in-memory cache and the local persistent log (so replicas
// survive this node's restart) without re-announcing through OnStore.
func (s *Server) handleClusterEntry(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, CodeDraining, 0, "server is draining")
		return
	}
	var e cluster.Entry
	body := http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(body).Decode(&e); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, 0, "parsing entry: %v", err)
		return
	}
	if err := s.co.ImportRecord(e.Kind, e.Key, e.Val); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, 0, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
