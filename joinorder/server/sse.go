package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"milpjoin/joinorder"
)

// sseEventBuffer bounds the relay channel between solver callbacks and
// the HTTP writer. Callbacks must never block the solve (some run under
// search locks), so a full buffer drops the event instead — the anytime
// state is monotone, so a later event subsumes a dropped one.
const sseEventBuffer = 512

// handleStream is POST /v1/optimize/stream: the same request as
// /v1/optimize, answered as a Server-Sent-Events stream. Every solver and
// cache event becomes one SSE event named after its kind, carrying the
// event's JSON; the stream ends with a "result" event holding the
// OptimizeResponse (or an "error" event). Disconnecting cancels the
// request context, which threads into the solve — the solver unwinds
// promptly and the worker slot frees.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, CodeInternal, 0, "response writer does not support streaming")
		return
	}
	pr, ok := s.prepare(w, r)
	if !ok {
		return
	}
	s.ctr.streams.Add(1)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // reverse proxies: do not buffer
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// The solve runs concurrently with the writer loop. Callbacks are
	// serialised by the emitter; a full channel drops (never blocks) so a
	// slow reader cannot stall solver goroutines.
	events := make(chan joinorder.Event, sseEventBuffer)
	type outcome struct {
		resp *OptimizeResponse
		herr *httpError
	}
	done := make(chan outcome, 1)
	go func() {
		resp, herr := s.serve(r.Context(), pr, func(ev joinorder.Event) {
			select {
			case events <- ev:
			default:
				s.ctr.eventsDrop.Add(1)
			}
		})
		close(events)
		done <- outcome{resp, herr}
	}()

	for ev := range events {
		if err := writeSSE(w, ev.Kind.String(), ev); err != nil {
			// Client gone; keep draining so the solve's cancellation
			// (via r.Context()) is observed and the goroutine exits.
			continue
		}
		s.ctr.eventsSent.Add(1)
		fl.Flush()
	}
	out := <-done
	if out.herr != nil {
		// The "error" event's data is the same ErrorEnvelope a non-2xx
		// unary response carries, plus the HTTP status the request would
		// have received (the SSE stream itself is already committed 200).
		writeSSE(w, "error", struct { //nolint:errcheck // client may be gone
			ErrorEnvelope
			Status int `json:"status"`
		}{
			ErrorEnvelope: ErrorEnvelope{Err: ErrorDetail{
				Code:             out.herr.code,
				Message:          out.herr.msg,
				RetryAfterMillis: out.herr.retryAfter.Milliseconds(),
			}},
			Status: out.herr.status,
		})
	} else {
		writeSSE(w, "result", out.resp) //nolint:errcheck // client may be gone
	}
	fl.Flush()
}

// writeSSE writes one Server-Sent Event with the JSON encoding of v as
// its data line.
func writeSSE(w http.ResponseWriter, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}
