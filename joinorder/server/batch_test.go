package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"milpjoin/internal/workload"
	"milpjoin/joinorder"
)

// postBatch ships a BatchRequest and decodes the BatchResponse.
func postBatch(t testing.TB, url string, breq BatchRequest, header http.Header) (*http.Response, *BatchResponse) {
	t.Helper()
	body, err := json.Marshal(breq)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/optimize/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding batch response: %v", err)
	}
	return resp, &out
}

// TestBatchEndpointEnvelopes exercises the per-item result-or-error
// contract: a malformed item resolves to its own envelope without
// poisoning the valid neighbors.
func TestBatchEndpointEnvelopes(t *testing.T) {
	s := mustServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	good := OptimizeRequest{
		Query:    workload.Generate(workload.Chain, 8, 1, workload.Config{}),
		Strategy: "dp-leftdeep",
		Timeout:  "10s",
	}
	bad := OptimizeRequest{SQL: "SELECT 1"} // SQL without a catalog
	other := OptimizeRequest{
		Query:    workload.Generate(workload.Star, 6, 2, workload.Config{}),
		Strategy: "greedy",
		Timeout:  "2s",
	}

	resp, out := postBatch(t, ts.URL, BatchRequest{Queries: []OptimizeRequest{good, bad, other}}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	if len(out.Results) != 3 {
		t.Fatalf("batch answered %d items, want 3", len(out.Results))
	}
	for i, want := range []struct {
		ok   bool
		code string
	}{{ok: true}, {code: CodeBadRequest}, {ok: true}} {
		it := out.Results[i]
		if it.Index != i {
			t.Errorf("item %d carries index %d", i, it.Index)
		}
		if want.ok {
			if it.Response == nil || it.Response.Result == nil || it.Response.Result.Plan == nil {
				t.Errorf("item %d carries no plan: %+v", i, it)
			}
			if it.Error != nil {
				t.Errorf("item %d carries both outcomes", i)
			}
			continue
		}
		if it.Error == nil || it.Error.Code != want.code {
			t.Errorf("item %d error = %+v, want code %s", i, it.Error, want.code)
		}
		if it.Response != nil {
			t.Errorf("failed item %d also carries a response", i)
		}
	}

	// The same valid query again hits the now-warm cache.
	_, out = postBatch(t, ts.URL, BatchRequest{Queries: []OptimizeRequest{good}}, nil)
	if len(out.Results) != 1 || out.Results[0].Response == nil || !out.Results[0].Response.CacheHit {
		t.Errorf("repeat batch item did not hit the cache: %+v", out.Results)
	}
	if snap := s.Snapshot(); snap.Batches != 2 || snap.BatchItems != 4 {
		t.Errorf("batch counters = %d/%d, want 2/4", snap.Batches, snap.BatchItems)
	}
}

// TestBatchRejectsStreaming pins the JSON-only rule: a batch that asks
// for an SSE answer gets a structured bad_request pointing at the
// streaming endpoint, not a protocol upgrade.
func TestBatchRejectsStreaming(t *testing.T) {
	s := mustServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	hdr := http.Header{}
	hdr.Set("Accept", "text/event-stream")
	breq := BatchRequest{Queries: []OptimizeRequest{{
		Query: workload.Generate(workload.Chain, 6, 1, workload.Config{}), Strategy: "greedy",
	}}}
	resp, _ := postBatch(t, ts.URL, breq, hdr)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("streaming batch status = %d, want 400", resp.StatusCode)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error envelope does not parse: %v", err)
	}
	if env.Err.Code != CodeBadRequest {
		t.Errorf("code = %q, want %q", env.Err.Code, CodeBadRequest)
	}
}

// TestBatchRequestValidation covers the whole-batch 400s.
func TestBatchRequestValidation(t *testing.T) {
	s := mustServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	if resp, _ := postBatch(t, ts.URL, BatchRequest{}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status = %d, want 400", resp.StatusCode)
	}
	over := BatchRequest{Queries: make([]OptimizeRequest, maxBatchItems+1)}
	for i := range over.Queries {
		over.Queries[i] = OptimizeRequest{Query: workload.Generate(workload.Chain, 4, 1, workload.Config{}), Strategy: "greedy"}
	}
	if resp, _ := postBatch(t, ts.URL, over, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversize batch status = %d, want 400", resp.StatusCode)
	}
}

// TestBatchTenantRateLimit bills batch items at ingress, per item.
func TestBatchTenantRateLimit(t *testing.T) {
	s := mustServer(t, Config{TenantRate: 1, TenantBurst: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	mk := func(seed int64) OptimizeRequest {
		return OptimizeRequest{
			Query: workload.Generate(workload.Chain, 5, seed, workload.Config{}), Strategy: "greedy", Timeout: "2s",
		}
	}
	_, out := postBatch(t, ts.URL, BatchRequest{
		Tenant:  "acme",
		Queries: []OptimizeRequest{mk(1), mk(2), mk(3)},
	}, nil)
	var limited, answered int
	for _, it := range out.Results {
		switch {
		case it.Error != nil && it.Error.Code == CodeRateLimited:
			limited++
			if it.Error.RetryAfterMillis <= 0 {
				t.Error("rate-limited item carries no retry-after hint")
			}
		case it.Response != nil:
			answered++
		}
	}
	if answered != 2 || limited != 1 {
		t.Errorf("burst-2 tenant: answered=%d limited=%d, want 2/1", answered, limited)
	}
}

// TestBatchClusterForwarding posts one batch at a single node of a
// three-node ring and asserts remote items travel as sub-batches to
// their owners: every item answered, each fingerprint solved exactly
// once, by the node the ring names.
func TestBatchClusterForwarding(t *testing.T) {
	tc := newTestCluster(t, 3, nil)

	const distinct = 6
	breq := BatchRequest{Queries: make([]OptimizeRequest, distinct)}
	queries := make([]*joinorder.Query, distinct)
	for i := range breq.Queries {
		q := workload.Generate(workload.Chain, 8, int64(i+1), workload.Config{})
		queries[i] = q
		breq.Queries[i] = OptimizeRequest{Query: q, Strategy: "dp-leftdeep", Timeout: "10s"}
	}

	resp, out := postBatch(t, tc.https[0].URL, breq, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	if node := resp.Header.Get(NodeHeader); node != tc.peers[0].ID {
		t.Errorf("batch document from %q, want ingress node %q", node, tc.peers[0].ID)
	}
	for i, it := range out.Results {
		if it.Response == nil || it.Response.Result == nil || it.Response.Result.Plan == nil {
			t.Fatalf("item %d unanswered: %+v", i, it)
		}
	}
	if got := tc.totalSolves(); got != distinct {
		t.Errorf("cluster performed %d solves for %d distinct queries", got, distinct)
	}
	// At least one item must have hashed off the ingress node and been
	// solved remotely via a sub-batch forward.
	var remoteSolves int64
	for i := 1; i < len(tc.solves); i++ {
		remoteSolves += tc.solves[i].n.Load()
	}
	if remoteSolves == 0 {
		t.Error("no sub-batch reached a remote owner")
	}
	if tc.routers[0].Stats().Forwards == 0 {
		t.Error("ingress node recorded no forwards")
	}
}
