// Package server turns the join-order optimizer into a network service:
// an HTTP/JSON daemon fronting the joinorder/cache serving layer with
// admission control, request coalescing, streaming anytime plans, and
// graceful drain — the operational form of the paper's core claim that a
// MILP optimizer is an *anytime* service whose answer at any interruption
// point is an incumbent plan with a proven cost bound.
//
// Endpoints:
//
//	POST /v1/optimize        one-shot optimization; JSON in, JSON out
//	POST /v1/optimize/stream same request, answered as an SSE stream of
//	                         solver events (watch the anytime gap close
//	                         live; disconnecting cancels the solve)
//	GET  /healthz            liveness (503 while draining)
//	GET  /varz               expvar counters (JSON)
//	GET  /metrics            Prometheus text exposition
//
// Admission control is three gates in order: a per-tenant token bucket
// (429 + Retry-After when exhausted), a bounded worker pool sized off
// GOMAXPROCS, and a bounded queue ordered by request deadline. When the
// queue is saturated the server degrades instead of failing: the request
// is answered immediately with the cache's fallback-strategy plan (the
// DegradeUnder path, which also starts one deduplicated background refine
// whose result lands in the cache for the retry the Retry-After header
// invites). Every request therefore gets a plan, a degraded plan, or a
// 429 — never a silent drop.
package server

import (
	"fmt"
	"log/slog"
	"runtime"
	"time"

	"milpjoin/joinorder"
	"milpjoin/joinorder/cache"
	"milpjoin/joinorder/cluster"
)

// Config configures a Server. The zero value is production-usable:
// GOMAXPROCS workers, an 8×-deep queue, 10s default / 60s maximum solve
// budgets, no tenant rate limiting, and a cache that degrades requests
// with under 150ms of budget left.
type Config struct {
	// MaxWorkers bounds concurrent solves (default: GOMAXPROCS). Each
	// admitted request occupies one worker for the duration of its solve;
	// coalesced waiters hold theirs too, so the bound is on in-flight
	// requests actually consuming CPU or waiting for a leader.
	MaxWorkers int
	// QueueDepth bounds the deadline-ordered admission queue (default:
	// 8×MaxWorkers). A request arriving to a full queue is shed: answered
	// degraded when it allows that, 429 otherwise.
	QueueDepth int

	// DefaultTimeLimit is the solve budget of requests that name none
	// (default 10s).
	DefaultTimeLimit time.Duration
	// MaxTimeLimit caps per-request budgets (default 60s); larger asks
	// are clamped, not rejected, so a misconfigured client degrades the
	// answer quality rather than monopolizing a worker.
	MaxTimeLimit time.Duration

	// TenantRate is the sustained per-tenant request rate in requests
	// per second (0: unlimited). Tenants are named by the X-Tenant
	// header or the request's "tenant" field; unnamed requests share
	// one bucket.
	TenantRate float64
	// TenantBurst is the per-tenant burst size (default: ceil(TenantRate),
	// at least 1, when TenantRate is set).
	TenantBurst int

	// Cache configures the fronted plan cache. Zero fields take the
	// cache defaults, except DegradeUnder which the server defaults to
	// 150ms so the saturated-queue degraded path exists out of the box.
	Cache cache.Config

	// Cluster, when set, shards this server into a joinoptd fleet: the
	// router's consistent-hash ring routes each request's canonical
	// fingerprint to its owning node (forwarding those owned elsewhere),
	// freshly stored cache entries replicate to ring successors, and the
	// /v1/cluster/entry ingest endpoint accepts peers' replicas. The
	// server wires the cache's OnStore hook to the router unless the
	// caller already set one. The caller owns the router's lifecycle
	// (cluster.New before server.New, Close after drain).
	Cluster *cluster.Router

	// Logger receives request and solve logging (default: slog.Default()).
	// Solver events are rendered onto it through obs.SlogHandler when
	// LogEvents is set.
	Logger *slog.Logger
	// LogEvents additionally logs every solver event at debug level —
	// one line per incumbent, bound improvement, cut round, … — keyed by
	// request ID.
	LogEvents bool

	// now overrides the clock in tests.
	now func() time.Time
}

// withDefaults returns the config with every zero field replaced by its
// documented default.
func (c Config) withDefaults() Config {
	if c.MaxWorkers == 0 {
		c.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 8 * c.MaxWorkers
	}
	if c.DefaultTimeLimit == 0 {
		c.DefaultTimeLimit = 10 * time.Second
	}
	if c.MaxTimeLimit == 0 {
		c.MaxTimeLimit = 60 * time.Second
	}
	if c.TenantRate > 0 && c.TenantBurst == 0 {
		c.TenantBurst = int(c.TenantRate + 0.999)
		if c.TenantBurst < 1 {
			c.TenantBurst = 1
		}
	}
	if c.Cache.DegradeUnder == 0 {
		c.Cache.DegradeUnder = 150 * time.Millisecond
	}
	c.Cache = c.Cache.WithDefaults()
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Validate checks the caller-supplied config, including the embedded
// cache config (cache.Config.Validate) and the cross-layer constraint the
// cache alone cannot see: a degrade threshold at or above the default
// request deadline would degrade every request.
func (c Config) Validate() error {
	if c.MaxWorkers < 0 {
		return fmt.Errorf("%w: negative MaxWorkers %d", joinorder.ErrInvalidOptions, c.MaxWorkers)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("%w: negative QueueDepth %d", joinorder.ErrInvalidOptions, c.QueueDepth)
	}
	if c.DefaultTimeLimit < 0 {
		return fmt.Errorf("%w: negative DefaultTimeLimit %v", joinorder.ErrInvalidOptions, c.DefaultTimeLimit)
	}
	if c.MaxTimeLimit < 0 {
		return fmt.Errorf("%w: negative MaxTimeLimit %v", joinorder.ErrInvalidOptions, c.MaxTimeLimit)
	}
	if c.DefaultTimeLimit > 0 && c.MaxTimeLimit > 0 && c.DefaultTimeLimit > c.MaxTimeLimit {
		return fmt.Errorf("%w: DefaultTimeLimit %v exceeds MaxTimeLimit %v",
			joinorder.ErrInvalidOptions, c.DefaultTimeLimit, c.MaxTimeLimit)
	}
	if c.TenantRate < 0 {
		return fmt.Errorf("%w: negative TenantRate %g", joinorder.ErrInvalidOptions, c.TenantRate)
	}
	if c.TenantBurst < 0 {
		return fmt.Errorf("%w: negative TenantBurst %d", joinorder.ErrInvalidOptions, c.TenantBurst)
	}
	if err := c.Cache.Validate(); err != nil {
		return err
	}
	if dl := c.DefaultTimeLimit; dl > 0 && c.Cache.DegradeUnder >= dl {
		return fmt.Errorf("%w: cache DegradeUnder %v at or above the default request deadline %v would degrade every request",
			joinorder.ErrInvalidOptions, c.Cache.DegradeUnder, dl)
	}
	return nil
}
