package server

import (
	"errors"
	"testing"
	"time"
)

func dispatched(t *ticket) bool {
	select {
	case <-t.ready:
		return true
	default:
		return false
	}
}

func TestAdmitterDispatchesByDeadline(t *testing.T) {
	a := newAdmitter(1, 8)
	now := time.Now()

	holder, err := a.admit(now.Add(time.Second))
	if err != nil || !dispatched(holder) {
		t.Fatalf("first admit: err=%v dispatched=%v", err, dispatched(holder))
	}
	late, err := a.admit(now.Add(3 * time.Second))
	if err != nil || dispatched(late) {
		t.Fatalf("late admit should queue: err=%v", err)
	}
	early, err := a.admit(now.Add(2 * time.Second))
	if err != nil || dispatched(early) {
		t.Fatalf("early admit should queue: err=%v", err)
	}

	a.release() // the earlier deadline must win despite arriving later
	if !dispatched(early) || dispatched(late) {
		t.Fatalf("deadline order violated: early=%v late=%v", dispatched(early), dispatched(late))
	}
	a.release()
	if !dispatched(late) {
		t.Fatal("second release did not dispatch the remaining ticket")
	}
	a.release()
	if running, queued := a.load(); running != 0 || queued != 0 {
		t.Fatalf("pool not drained: running=%d queued=%d", running, queued)
	}
}

func TestAdmitterSaturationAndCancel(t *testing.T) {
	a := newAdmitter(1, 1)
	now := time.Now()
	if _, err := a.admit(now); err != nil {
		t.Fatal(err)
	}
	queued, err := a.admit(now)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.admit(now); !errors.Is(err, errSaturated) {
		t.Fatalf("full queue admit err = %v, want errSaturated", err)
	}
	if !a.cancel(queued) {
		t.Fatal("cancel of a queued ticket reported dispatched")
	}
	if _, err := a.admit(now); err != nil {
		t.Fatalf("admit after cancel: %v", err)
	}
	if a.cancel(queued) {
		t.Fatal("double cancel succeeded")
	}
}

func TestAdmitterCancelAfterDispatchTransfersSlot(t *testing.T) {
	a := newAdmitter(1, 2)
	now := time.Now()
	if _, err := a.admit(now); err != nil {
		t.Fatal(err)
	}
	q1, _ := a.admit(now.Add(time.Second))
	a.release() // dispatches q1
	if a.cancel(q1) {
		t.Fatal("cancel after dispatch must report false (caller owns the slot)")
	}
	// The caller that lost the cancel race releases the slot it owns.
	a.release()
	if running, _ := a.load(); running != 0 {
		t.Fatalf("running = %d after releases, want 0", running)
	}
}

func TestTenantBuckets(t *testing.T) {
	b := newTenantBuckets(1, 2) // 1 rps, burst 2
	now := time.Now()
	for i := 0; i < 2; i++ {
		if ok, _ := b.allow("a", now); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, wait := b.allow("a", now)
	if ok {
		t.Fatal("over-burst request allowed")
	}
	if wait <= 0 || wait > time.Second+time.Millisecond {
		t.Fatalf("retry-after %v outside (0, 1s]", wait)
	}
	if ok, _ := b.allow("b", now); !ok {
		t.Fatal("fresh tenant denied")
	}
	// Half a second refills half a token; a full second refills one.
	if ok, _ := b.allow("a", now.Add(500*time.Millisecond)); ok {
		t.Fatal("allowed before a full token accrued")
	}
	if ok, _ := b.allow("a", now.Add(1600*time.Millisecond)); !ok {
		t.Fatal("denied after a full token accrued")
	}
}

func TestTenantBucketsNilUnlimited(t *testing.T) {
	var b *tenantBuckets
	if ok, _ := b.allow("anyone", time.Now()); !ok {
		t.Fatal("nil buckets must admit everything")
	}
	if newTenantBuckets(0, 0) != nil {
		t.Fatal("zero rate should build the unlimited (nil) bucket set")
	}
}
