package server

import (
	"errors"
	"testing"
	"time"
)

func dispatched(t *ticket) bool {
	select {
	case <-t.ready:
		return true
	default:
		return false
	}
}

func TestAdmitterDispatchesByDeadline(t *testing.T) {
	a := newAdmitter(1, 8)
	now := time.Now()

	holder, err := a.admit(now.Add(time.Second), 1)
	if err != nil || !dispatched(holder) {
		t.Fatalf("first admit: err=%v dispatched=%v", err, dispatched(holder))
	}
	late, err := a.admit(now.Add(3*time.Second), 1)
	if err != nil || dispatched(late) {
		t.Fatalf("late admit should queue: err=%v", err)
	}
	early, err := a.admit(now.Add(2*time.Second), 1)
	if err != nil || dispatched(early) {
		t.Fatalf("early admit should queue: err=%v", err)
	}

	a.release(holder) // the earlier deadline must win despite arriving later
	if !dispatched(early) || dispatched(late) {
		t.Fatalf("deadline order violated: early=%v late=%v", dispatched(early), dispatched(late))
	}
	a.release(early)
	if !dispatched(late) {
		t.Fatal("second release did not dispatch the remaining ticket")
	}
	a.release(late)
	if running, queued := a.load(); running != 0 || queued != 0 {
		t.Fatalf("pool not drained: running=%d queued=%d", running, queued)
	}
}

func TestAdmitterSaturationAndCancel(t *testing.T) {
	a := newAdmitter(1, 1)
	now := time.Now()
	if _, err := a.admit(now, 1); err != nil {
		t.Fatal(err)
	}
	queued, err := a.admit(now, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.admit(now, 1); !errors.Is(err, errSaturated) {
		t.Fatalf("full queue admit err = %v, want errSaturated", err)
	}
	if !a.cancel(queued) {
		t.Fatal("cancel of a queued ticket reported dispatched")
	}
	if _, err := a.admit(now, 1); err != nil {
		t.Fatalf("admit after cancel: %v", err)
	}
	if a.cancel(queued) {
		t.Fatal("double cancel succeeded")
	}
}

func TestAdmitterCancelAfterDispatchTransfersSlot(t *testing.T) {
	a := newAdmitter(1, 2)
	now := time.Now()
	holder, err := a.admit(now, 1)
	if err != nil {
		t.Fatal(err)
	}
	q1, _ := a.admit(now.Add(time.Second), 1)
	a.release(holder) // dispatches q1
	if a.cancel(q1) {
		t.Fatal("cancel after dispatch must report false (caller owns the slot)")
	}
	// The caller that lost the cancel race releases the slot it owns.
	a.release(q1)
	if running, _ := a.load(); running != 0 {
		t.Fatalf("running = %d after releases, want 0", running)
	}
}

// TestAdmitterWeightedOccupancy: a portfolio request occupies one slot
// per member, so concurrent weighted requests cannot oversubscribe the
// pool.
func TestAdmitterWeightedOccupancy(t *testing.T) {
	a := newAdmitter(4, 8)
	now := time.Now()

	auto, err := a.admit(now.Add(time.Second), 3)
	if err != nil || !dispatched(auto) {
		t.Fatalf("weight-3 admit into empty pool: err=%v dispatched=%v", err, dispatched(auto))
	}
	one, err := a.admit(now.Add(time.Second), 1)
	if err != nil || !dispatched(one) {
		t.Fatalf("weight-1 admit with one free slot: err=%v dispatched=%v", err, dispatched(one))
	}
	if running, _ := a.load(); running != 4 {
		t.Fatalf("running = %d, want 4 weight units", running)
	}
	// A second portfolio must queue: only 0 units free.
	auto2, err := a.admit(now.Add(2*time.Second), 3)
	if err != nil || dispatched(auto2) {
		t.Fatalf("weight-3 admit into full pool should queue: err=%v", err)
	}
	// Releasing the single-slot request frees 1 unit — not enough for the
	// queued portfolio, and dispatch must not overshoot.
	a.release(one)
	if dispatched(auto2) {
		t.Fatal("weight-3 ticket dispatched with only 1 free unit")
	}
	a.release(auto)
	if !dispatched(auto2) {
		t.Fatal("weight-3 ticket not dispatched with 4 free units")
	}
	a.release(auto2)
	if running, queued := a.load(); running != 0 || queued != 0 {
		t.Fatalf("pool not drained: running=%d queued=%d", running, queued)
	}
}

// TestAdmitterHeavyHeadBlocksLightLatecomer: FIFO fairness — while a
// heavy ticket waits at the queue head, lighter later arrivals queue
// behind it instead of stealing the partial capacity it is waiting for.
func TestAdmitterHeavyHeadBlocksLightLatecomer(t *testing.T) {
	a := newAdmitter(2, 8)
	now := time.Now()
	holder, _ := a.admit(now.Add(time.Second), 1)
	heavy, _ := a.admit(now.Add(2*time.Second), 2)
	if dispatched(heavy) {
		t.Fatal("weight-2 ticket dispatched with 1 free unit")
	}
	light, _ := a.admit(now.Add(3*time.Second), 1)
	if dispatched(light) {
		t.Fatal("light latecomer jumped the queued heavy ticket")
	}
	// Withdrawing the heavy head lets the light ticket use the free unit.
	if !a.cancel(heavy) {
		t.Fatal("cancel of queued heavy ticket failed")
	}
	if !dispatched(light) {
		t.Fatal("light ticket not dispatched after heavy head withdrew")
	}
	a.release(light)
	a.release(holder)
	if running, queued := a.load(); running != 0 || queued != 0 {
		t.Fatalf("pool not drained: running=%d queued=%d", running, queued)
	}
}

// TestAdmitterClampsOversizedWeight: a portfolio wider than the pool
// degrades to whole-pool occupancy rather than queueing forever.
func TestAdmitterClampsOversizedWeight(t *testing.T) {
	a := newAdmitter(2, 4)
	now := time.Now()
	wide, err := a.admit(now.Add(time.Second), 7)
	if err != nil || !dispatched(wide) {
		t.Fatalf("oversized weight must clamp and dispatch: err=%v dispatched=%v", err, dispatched(wide))
	}
	if running, _ := a.load(); running != 2 {
		t.Fatalf("running = %d, want clamp to 2", running)
	}
	a.release(wide)
	if running, _ := a.load(); running != 0 {
		t.Fatalf("running = %d after release, want 0", running)
	}
}

func TestTenantBuckets(t *testing.T) {
	b := newTenantBuckets(1, 2) // 1 rps, burst 2
	now := time.Now()
	for i := 0; i < 2; i++ {
		if ok, _ := b.allow("a", now); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, wait := b.allow("a", now)
	if ok {
		t.Fatal("over-burst request allowed")
	}
	if wait <= 0 || wait > time.Second+time.Millisecond {
		t.Fatalf("retry-after %v outside (0, 1s]", wait)
	}
	if ok, _ := b.allow("b", now); !ok {
		t.Fatal("fresh tenant denied")
	}
	// Half a second refills half a token; a full second refills one.
	if ok, _ := b.allow("a", now.Add(500*time.Millisecond)); ok {
		t.Fatal("allowed before a full token accrued")
	}
	if ok, _ := b.allow("a", now.Add(1600*time.Millisecond)); !ok {
		t.Fatal("denied after a full token accrued")
	}
}

func TestTenantBucketsNilUnlimited(t *testing.T) {
	var b *tenantBuckets
	if ok, _ := b.allow("anyone", time.Now()); !ok {
		t.Fatal("nil buckets must admit everything")
	}
	if newTenantBuckets(0, 0) != nil {
		t.Fatal("zero rate should build the unlimited (nil) bucket set")
	}
}
