package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"milpjoin/internal/sql"
	"milpjoin/joinorder"
)

// maxRequestBytes bounds a request body; a catalog plus query for even a
// thousand-table join fits comfortably.
const maxRequestBytes = 8 << 20

// OptimizeRequest is the JSON body of POST /v1/optimize and
// /v1/optimize/stream. The query arrives either pre-modeled ("query", the
// joinorder.Query JSON the CLI's -query flag reads) or as SQL text plus a
// catalog of table statistics ("sql" + "catalog", the -sql/-catalog
// formats). The remaining knobs mirror the CLI flags and map onto
// joinorder.Options.
type OptimizeRequest struct {
	// Query is the pre-modeled form: tables with cardinalities and
	// predicates with selectivities.
	Query *joinorder.Query `json:"query,omitempty"`
	// SQL is a select-project-join statement; requires Catalog.
	SQL string `json:"sql,omitempty"`
	// Catalog maps table names to statistics for SQL translation.
	Catalog map[string]sql.TableStats `json:"catalog,omitempty"`

	// Strategy names the optimizer to run (default "milp"). "auto" races
	// a portfolio of strategies over a shared incumbent bus and answers
	// with the winner.
	Strategy string `json:"strategy,omitempty"`
	// Portfolio overrides the member list raced by strategy "auto";
	// invalid with any other strategy. Empty means the default portfolio.
	Portfolio []string `json:"portfolio,omitempty"`
	// Metric is the cost model: cout, hash, smj, bnl, or choose
	// (default hash).
	Metric string `json:"metric,omitempty"`
	// Precision is the MILP cardinality approximation: high, medium, or
	// low (default medium).
	Precision string `json:"precision,omitempty"`
	// Budget bundles the run's resource limits as one object. Each
	// non-zero field wins over the corresponding flat request field
	// (timeout, gap_tol, threads) — the same precedence rule as
	// joinorder.Options.Budget over its deprecated flat aliases.
	Budget *BudgetRequest `json:"budget,omitempty"`
	// Timeout is the solve budget as a Go duration string ("500ms",
	// "5s"); defaulted and capped by the server config.
	//
	// Deprecated: set budget.timeout. When both are set, budget wins.
	Timeout string `json:"timeout,omitempty"`
	// GapTol is the relative optimality gap at which to stop (default
	// 1e-6).
	//
	// Deprecated: set budget.gap_tol. When both are set, budget wins.
	GapTol float64 `json:"gap_tol,omitempty"`
	// Threads is the solver's parallel worker count (default 1).
	//
	// Deprecated: set budget.threads. When both are set, budget wins.
	Threads int `json:"threads,omitempty"`
	// Seed drives randomized strategies.
	Seed int64 `json:"seed,omitempty"`

	// PartitionCap bounds partition sizes for the hybrid strategy
	// (default 15).
	PartitionCap int `json:"partition_cap,omitempty"`
	// SeamBudgetFrac is the hybrid strategy's budget share reserved for
	// seam re-optimization, in [0, 1) (default 0.25).
	SeamBudgetFrac float64 `json:"seam_budget_frac,omitempty"`

	// Tenant names the rate-limiting bucket; the X-Tenant header wins
	// when both are set.
	Tenant string `json:"tenant,omitempty"`
	// AllowDegraded permits a fallback-strategy answer when the server
	// is saturated (default true). Requests that must have the asked-for
	// strategy set it to false and accept 429s instead.
	AllowDegraded *bool `json:"allow_degraded,omitempty"`
}

// BudgetRequest is the wire form of joinorder.Budget: the run's resource
// limits as one object. Zero fields fall back to the flat request fields,
// then to the server defaults.
type BudgetRequest struct {
	// Timeout is the solve budget as a Go duration string ("500ms", "5s").
	Timeout string `json:"timeout,omitempty"`
	// GapTol is the relative optimality gap at which to stop.
	GapTol float64 `json:"gap_tol,omitempty"`
	// MaxNodes bounds explored branch-and-bound nodes.
	MaxNodes int `json:"max_nodes,omitempty"`
	// Threads is the solver's parallel worker count.
	Threads int `json:"threads,omitempty"`
}

// allowDegraded resolves the tri-state flag (default true).
func (r *OptimizeRequest) allowDegraded() bool {
	return r.AllowDegraded == nil || *r.AllowDegraded
}

// query materializes the request's query, validating exactly one source
// was provided.
func (r *OptimizeRequest) query() (*joinorder.Query, error) {
	switch {
	case r.Query != nil && r.SQL != "":
		return nil, fmt.Errorf("request carries both query and sql; send one")
	case r.Query != nil:
		return r.Query, r.Query.Validate()
	case r.SQL != "":
		if len(r.Catalog) == 0 {
			return nil, fmt.Errorf("sql requires a catalog")
		}
		stmt, err := sql.Parse(r.SQL)
		if err != nil {
			return nil, err
		}
		cat := sql.NewCatalog()
		cat.Tables = r.Catalog
		q, _, err := cat.Translate(stmt)
		return q, err
	default:
		return nil, fmt.Errorf("request carries neither query nor sql")
	}
}

// options maps the request knobs onto joinorder.Options, applying the
// server's default and maximum budgets. The mapping mirrors the CLI's
// flag parsing so a request body and a joinopt invocation describe the
// same solve.
func (r *OptimizeRequest) options(cfg Config) (joinorder.Options, error) {
	opts := joinorder.Options{
		Strategy:       r.Strategy,
		Portfolio:      r.Portfolio,
		Budget:         joinorder.Budget{GapTol: r.GapTol, Threads: r.Threads},
		Seed:           r.Seed,
		PartitionCap:   r.PartitionCap,
		SeamBudgetFrac: r.SeamBudgetFrac,
	}
	// The budget object wins over the flat aliases field-by-field.
	timeout := r.Timeout
	if r.Budget != nil {
		if r.Budget.Timeout != "" {
			timeout = r.Budget.Timeout
		}
		if r.Budget.GapTol != 0 {
			opts.Budget.GapTol = r.Budget.GapTol
		}
		if r.Budget.MaxNodes != 0 {
			opts.Budget.MaxNodes = r.Budget.MaxNodes
		}
		if r.Budget.Threads != 0 {
			opts.Budget.Threads = r.Budget.Threads
		}
	}
	switch r.Precision {
	case "", "medium":
		opts.Precision = joinorder.PrecisionMedium
	case "high":
		opts.Precision = joinorder.PrecisionHigh
	case "low":
		opts.Precision = joinorder.PrecisionLow
	default:
		return opts, fmt.Errorf("unknown precision %q", r.Precision)
	}
	switch r.Metric {
	case "cout":
		opts.Metric = joinorder.Cout
	case "", "hash":
		opts.Metric = joinorder.OperatorCost
		opts.Op = joinorder.HashJoin
	case "smj":
		opts.Metric = joinorder.OperatorCost
		opts.Op = joinorder.SortMergeJoin
	case "bnl":
		opts.Metric = joinorder.OperatorCost
		opts.Op = joinorder.BlockNestedLoopJoin
		opts.CardCap = 1e8
	case "choose":
		opts.Metric = joinorder.OperatorCost
		opts.Op = joinorder.HashJoin
		opts.ChooseOperators = true
		opts.CardCap = 1e8
	default:
		return opts, fmt.Errorf("unknown metric %q", r.Metric)
	}
	opts.Budget.TimeLimit = cfg.DefaultTimeLimit
	if timeout != "" {
		d, err := time.ParseDuration(timeout)
		if err != nil {
			return opts, fmt.Errorf("bad timeout: %v", err)
		}
		if d <= 0 {
			return opts, fmt.Errorf("timeout %v must be positive", d)
		}
		opts.Budget.TimeLimit = d
	}
	if cfg.MaxTimeLimit > 0 && opts.Budget.TimeLimit > cfg.MaxTimeLimit {
		opts.Budget.TimeLimit = cfg.MaxTimeLimit
	}
	return opts, opts.Validate()
}

// decodeRequest reads and parses one optimize request body, returning the
// raw bytes alongside so the cluster layer can forward them verbatim.
func decodeRequest(w http.ResponseWriter, r *http.Request) (*OptimizeRequest, []byte, error) {
	body := http.MaxBytesReader(w, r.Body, maxRequestBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		return nil, nil, fmt.Errorf("reading request: %v", err)
	}
	var req OptimizeRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, nil, fmt.Errorf("parsing request: %v", err)
	}
	return &req, data, nil
}

// tenant resolves the rate-limiting bucket name: header, then body field,
// then the shared anonymous bucket.
func (r *OptimizeRequest) tenant(hr *http.Request) string {
	if t := hr.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return r.Tenant
}

// OptimizeResponse is the JSON body of a successful POST /v1/optimize,
// and the payload of the final "result" SSE event on the stream endpoint.
type OptimizeResponse struct {
	// Result is the optimization outcome: plan, cost, proven bound, gap,
	// status, and (for the MILP strategy) per-phase solver stats.
	Result *joinorder.Result `json:"result"`
	// Degraded marks an answer served by the fallback strategy — under a
	// saturated queue or a budget below the cache's degrade threshold —
	// while a background refine warms the cache for a retry.
	Degraded bool `json:"degraded,omitempty"`
	// CacheHit marks an answer served from the plan cache without a solve.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Coalesced marks a request that shared an identical in-flight solve.
	Coalesced bool `json:"coalesced,omitempty"`
	// QueueMillis is time spent in the admission queue.
	QueueMillis float64 `json:"queue_ms"`
	// TotalMillis is time from arrival to response.
	TotalMillis float64 `json:"total_ms"`
}

// Error codes carried by the ErrorEnvelope of every non-2xx /v1 answer.
// They partition the error space by what the client should do next:
// retry later (draining, rate_limited, saturated, timeout), fix the
// request (bad_request, infeasible), or give up (internal). client_closed
// is only ever observed by in-process handler tests — the connection that
// would carry it is gone.
const (
	CodeDraining     = "draining"
	CodeBadRequest   = "bad_request"
	CodeRateLimited  = "rate_limited"
	CodeSaturated    = "saturated"
	CodeTimeout      = "timeout"
	CodeClientClosed = "client_closed"
	CodeInfeasible   = "infeasible"
	CodeInternal     = "internal"
)

// ErrorDetail is the payload of an ErrorEnvelope: a stable machine code,
// a human message, and — for retryable codes — how long to back off.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMillis mirrors the Retry-After header for retryable
	// errors; zero means no backoff hint.
	RetryAfterMillis int64 `json:"retry_after_ms,omitempty"`
}

// ErrorEnvelope is the JSON body of every non-2xx /v1 answer:
//
//	{"error": {"code": "rate_limited", "message": "...", "retry_after_ms": 1000}}
//
// Go clients decode it directly; UnmarshalJSON also tolerates the legacy
// flat form {"error": "message"} emitted by older servers, mapping it to
// an empty code.
type ErrorEnvelope struct {
	Err ErrorDetail `json:"error"`
}

// UnmarshalJSON accepts both the structured envelope and the legacy
// {"error": "message"} flat string form.
func (e *ErrorEnvelope) UnmarshalJSON(data []byte) error {
	var flat struct {
		Error json.RawMessage `json:"error"`
	}
	if err := json.Unmarshal(data, &flat); err != nil {
		return err
	}
	if len(flat.Error) > 0 && flat.Error[0] == '"' {
		e.Err = ErrorDetail{}
		return json.Unmarshal(flat.Error, &e.Err.Message)
	}
	return json.Unmarshal(flat.Error, &e.Err)
}

// Error makes the envelope usable as a Go error by clients.
func (e *ErrorEnvelope) Error() string {
	if e.Err.Code == "" {
		return e.Err.Message
	}
	return e.Err.Code + ": " + e.Err.Message
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, code string, retryAfter time.Duration, format string, args ...any) {
	writeJSON(w, status, ErrorEnvelope{Err: ErrorDetail{
		Code:             code,
		Message:          fmt.Sprintf(format, args...),
		RetryAfterMillis: retryAfter.Milliseconds(),
	}})
}
