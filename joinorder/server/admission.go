package server

import (
	"container/heap"
	"errors"
	"math"
	"sync"
	"time"
)

// errSaturated reports an admission queue at capacity; the caller sheds
// the request (degraded answer or 429).
var errSaturated = errors.New("server: admission queue saturated")

// ticket is one request's place in the admission queue. A dispatched
// ticket holds a worker slot until release; a queued ticket waits on
// ready and can be withdrawn by cancel.
type ticket struct {
	deadline time.Time
	seq      int64         // FIFO tiebreak among equal deadlines
	ready    chan struct{} // closed when a worker slot is granted
	idx      int           // heap index; -1 once dispatched or withdrawn
}

// ticketHeap orders queued tickets by deadline (earliest first), then
// arrival order — the request closest to missing its deadline runs next.
type ticketHeap []*ticket

func (h ticketHeap) Len() int { return len(h) }
func (h ticketHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].seq < h[j].seq
}
func (h ticketHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *ticketHeap) Push(x any) {
	t := x.(*ticket)
	t.idx = len(*h)
	*h = append(*h, t)
}
func (h *ticketHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.idx = -1
	*h = old[:n-1]
	return t
}

// admitter is the bounded worker pool behind /v1/optimize: at most
// workers requests solve concurrently, at most depth more wait in a
// deadline-ordered queue, and everything beyond that is refused with
// errSaturated. There is no dispatcher goroutine — slots transfer from
// releasing to queued requests under one lock, so dispatch order is
// deterministic under test.
type admitter struct {
	mu      sync.Mutex
	workers int
	depth   int
	running int
	seq     int64
	q       ticketHeap
}

func newAdmitter(workers, depth int) *admitter {
	return &admitter{workers: workers, depth: depth}
}

// admit asks for a worker slot for a request due by deadline. The
// returned ticket's ready channel is already closed when a slot was free;
// otherwise the caller waits on it (racing its own context) and must call
// cancel if it gives up. Every admitted-and-dispatched ticket must be
// released exactly once.
func (a *admitter) admit(deadline time.Time) (*ticket, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seq++
	t := &ticket{deadline: deadline, seq: a.seq, ready: make(chan struct{}), idx: -1}
	if a.running < a.workers {
		a.running++
		close(t.ready)
		return t, nil
	}
	if len(a.q) >= a.depth {
		return nil, errSaturated
	}
	heap.Push(&a.q, t)
	return t, nil
}

// cancel withdraws a ticket that is still queued. It reports false when
// the ticket was already dispatched — the slot is then owned by the
// caller, which must release it.
func (a *admitter) cancel(t *ticket) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t.idx < 0 {
		return false
	}
	heap.Remove(&a.q, t.idx)
	return true
}

// release returns a worker slot and hands it to the earliest-deadline
// queued request, if any.
func (a *admitter) release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.q) > 0 {
		next := heap.Pop(&a.q).(*ticket)
		close(next.ready) // slot transfers; running stays constant
		return
	}
	a.running--
}

// load snapshots the pool: running solves and queued requests.
func (a *admitter) load() (running, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.running, len(a.q)
}

// tenantBuckets is a lazily-grown set of per-tenant token buckets with a
// shared rate and burst. Buckets refill continuously; a denied request
// learns how long until one token accrues.
type tenantBuckets struct {
	mu    sync.Mutex
	rate  float64 // tokens per second
	burst float64
	m     map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newTenantBuckets(rate float64, burst int) *tenantBuckets {
	if rate <= 0 {
		return nil // nil: unlimited, all methods no-op
	}
	return &tenantBuckets{rate: rate, burst: float64(burst), m: map[string]*tokenBucket{}}
}

// maxTenants bounds the bucket map; beyond it, full (idle) buckets are
// swept before admitting new tenants, so an attacker cycling tenant names
// cannot grow memory without bound.
const maxTenants = 16384

// allow spends one token of tenant's bucket. When the bucket is empty it
// returns false and the wait until one token accrues (the Retry-After).
func (b *tenantBuckets) allow(tenant string, now time.Time) (bool, time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	tb, ok := b.m[tenant]
	if !ok {
		if len(b.m) >= maxTenants {
			b.sweep()
		}
		tb = &tokenBucket{tokens: b.burst, last: now}
		b.m[tenant] = tb
	}
	if dt := now.Sub(tb.last).Seconds(); dt > 0 {
		tb.tokens = math.Min(b.burst, tb.tokens+dt*b.rate)
		tb.last = now
	}
	if tb.tokens >= 1 {
		tb.tokens--
		return true, 0
	}
	wait := time.Duration((1 - tb.tokens) / b.rate * float64(time.Second))
	return false, wait
}

// sweep drops buckets that have refilled completely — tenants idle long
// enough that forgetting them is indistinguishable from remembering.
// Called with mu held.
func (b *tenantBuckets) sweep() {
	for k, tb := range b.m {
		if tb.tokens >= b.burst {
			delete(b.m, k)
		}
	}
}
