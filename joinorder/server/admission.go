package server

import (
	"container/heap"
	"errors"
	"math"
	"sync"
	"time"
)

// errSaturated reports an admission queue at capacity; the caller sheds
// the request (degraded answer or 429).
var errSaturated = errors.New("server: admission queue saturated")

// ticket is one request's place in the admission queue. A dispatched
// ticket holds weight worker slots until release; a queued ticket waits
// on ready and can be withdrawn by cancel.
type ticket struct {
	deadline time.Time
	weight   int           // worker slots the request occupies (≥1)
	seq      int64         // FIFO tiebreak among equal deadlines
	ready    chan struct{} // closed when the slots are granted
	idx      int           // heap index; -1 once dispatched or withdrawn
}

// ticketHeap orders queued tickets by deadline (earliest first), then
// arrival order — the request closest to missing its deadline runs next.
type ticketHeap []*ticket

func (h ticketHeap) Len() int { return len(h) }
func (h ticketHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].seq < h[j].seq
}
func (h ticketHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *ticketHeap) Push(x any) {
	t := x.(*ticket)
	t.idx = len(*h)
	*h = append(*h, t)
}
func (h *ticketHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.idx = -1
	*h = old[:n-1]
	return t
}

// admitter is the bounded worker pool behind /v1/optimize: at most
// workers weight units solve concurrently, at most depth requests wait
// in a deadline-ordered queue, and everything beyond that is refused
// with errSaturated. A plain request weighs 1; a portfolio request
// weighs one unit per racing member so strategy=auto cannot oversubscribe
// the pool. There is no dispatcher goroutine — capacity transfers from
// releasing to queued requests under one lock, so dispatch order is
// deterministic under test.
type admitter struct {
	mu      sync.Mutex
	workers int
	depth   int
	running int // weight units currently dispatched
	seq     int64
	q       ticketHeap
}

func newAdmitter(workers, depth int) *admitter {
	return &admitter{workers: workers, depth: depth}
}

// admit asks for weight worker slots for a request due by deadline.
// Weight is clamped to [1, workers] so a wide portfolio degrades to
// whole-pool occupancy instead of never fitting. The returned ticket's
// ready channel is already closed when the slots were free; otherwise
// the caller waits on it (racing its own context) and must call cancel
// if it gives up. Every admitted-and-dispatched ticket must be released
// exactly once. A request dispatches immediately only when nothing is
// queued ahead of it — lighter latecomers do not starve a heavy ticket
// already waiting.
func (a *admitter) admit(deadline time.Time, weight int) (*ticket, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	weight = min(max(weight, 1), a.workers)
	a.seq++
	t := &ticket{deadline: deadline, weight: weight, seq: a.seq, ready: make(chan struct{}), idx: -1}
	if len(a.q) == 0 && a.running+weight <= a.workers {
		a.running += weight
		close(t.ready)
		return t, nil
	}
	if len(a.q) >= a.depth {
		return nil, errSaturated
	}
	heap.Push(&a.q, t)
	return t, nil
}

// cancel withdraws a ticket that is still queued. It reports false when
// the ticket was already dispatched — the slots are then owned by the
// caller, which must release them. Withdrawing a heavy ticket at the
// head of the queue can unblock lighter ones behind it.
func (a *admitter) cancel(t *ticket) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t.idx < 0 {
		return false
	}
	heap.Remove(&a.q, t.idx)
	a.dispatchLocked()
	return true
}

// release returns a dispatched ticket's worker slots and grants queued
// requests, earliest deadline first, for as long as they fit.
func (a *admitter) release(t *ticket) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.running -= t.weight
	a.dispatchLocked()
}

// dispatchLocked grants queue heads while the freed capacity fits them.
// Called with mu held.
func (a *admitter) dispatchLocked() {
	for len(a.q) > 0 && a.running+a.q[0].weight <= a.workers {
		next := heap.Pop(&a.q).(*ticket)
		a.running += next.weight
		close(next.ready)
	}
}

// load snapshots the pool: dispatched weight units and queued requests.
func (a *admitter) load() (running, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.running, len(a.q)
}

// tenantBuckets is a lazily-grown set of per-tenant token buckets with a
// shared rate and burst. Buckets refill continuously; a denied request
// learns how long until one token accrues.
type tenantBuckets struct {
	mu    sync.Mutex
	rate  float64 // tokens per second
	burst float64
	m     map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newTenantBuckets(rate float64, burst int) *tenantBuckets {
	if rate <= 0 {
		return nil // nil: unlimited, all methods no-op
	}
	return &tenantBuckets{rate: rate, burst: float64(burst), m: map[string]*tokenBucket{}}
}

// maxTenants bounds the bucket map; beyond it, full (idle) buckets are
// swept before admitting new tenants, so an attacker cycling tenant names
// cannot grow memory without bound.
const maxTenants = 16384

// allow spends one token of tenant's bucket. When the bucket is empty it
// returns false and the wait until one token accrues (the Retry-After).
func (b *tenantBuckets) allow(tenant string, now time.Time) (bool, time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	tb, ok := b.m[tenant]
	if !ok {
		if len(b.m) >= maxTenants {
			b.sweep()
		}
		tb = &tokenBucket{tokens: b.burst, last: now}
		b.m[tenant] = tb
	}
	if dt := now.Sub(tb.last).Seconds(); dt > 0 {
		tb.tokens = math.Min(b.burst, tb.tokens+dt*b.rate)
		tb.last = now
	}
	if tb.tokens >= 1 {
		tb.tokens--
		return true, 0
	}
	wait := time.Duration((1 - tb.tokens) / b.rate * float64(time.Second))
	return false, wait
}

// sweep drops buckets that have refilled completely — tenants idle long
// enough that forgetting them is indistinguishable from remembering.
// Called with mu held.
func (b *tenantBuckets) sweep() {
	for k, tb := range b.m {
		if tb.tokens >= b.burst {
			delete(b.m, k)
		}
	}
}
