package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"milpjoin/joinorder"
	"milpjoin/joinorder/cache"
	"milpjoin/joinorder/cluster"
)

// maxBatchItems bounds one batch request; larger workloads should be
// split client-side so no single batch monopolizes the admission queue.
const maxBatchItems = 256

// BatchRequest is the JSON body of POST /v1/optimize/batch: many
// optimize requests answered as one JSON document. The endpoint is
// JSON-only — streaming belongs to /v1/optimize/stream, one query per
// connection.
type BatchRequest struct {
	// Queries are the individual optimize requests, answered in order.
	Queries []OptimizeRequest `json:"queries"`
	// Tenant names the rate-limiting bucket for items that name none
	// themselves; the X-Tenant header wins over both.
	Tenant string `json:"tenant,omitempty"`
}

// BatchItem is one query's outcome inside a BatchResponse: exactly one
// of Response and Error is set. Items fail independently — one malformed
// or rate-limited query never poisons its neighbors.
type BatchItem struct {
	// Index is the item's position in the request's queries array.
	Index int `json:"index"`
	// Response is the successful outcome, identical to a single
	// /v1/optimize answer.
	Response *OptimizeResponse `json:"response,omitempty"`
	// Error is the per-query error envelope payload, with the same
	// stable codes as top-level errors.
	Error *ErrorDetail `json:"error,omitempty"`
}

// BatchResponse is the JSON body answering a batch: one item per query,
// in request order.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// batchItem is the in-flight state of one batch query.
type batchItem struct {
	req  *OptimizeRequest
	q    *joinorder.Query
	opts joinorder.Options
	fp   string // canonical fingerprint; "" when uncacheable
	resp *OptimizeResponse
	err  *ErrorDetail
}

func (it *batchItem) fail(code, msg string, retryAfter time.Duration) {
	it.err = &ErrorDetail{Code: code, Message: msg, RetryAfterMillis: retryAfter.Milliseconds()}
}

// handleBatch is POST /v1/optimize/batch. Items are parsed and
// rate-limited individually, partitioned by cluster ownership (remote
// shards are forwarded as sub-batches, failing open to local on peer
// errors), and local items are admitted as one weighted ticket then
// solved concurrently. The answer is always one JSON document with a
// per-query envelope; asking for a stream is a structured bad_request.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.ctr.batches.Add(1)
	if rt := s.cfg.Cluster; rt != nil {
		w.Header().Set(NodeHeader, rt.Self().ID)
	}
	if s.draining.Load() {
		s.ctr.drainReject.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, CodeDraining, time.Second, "server is draining")
		return
	}
	if accept := r.Header.Get("Accept"); strings.Contains(accept, "text/event-stream") {
		s.ctr.badRequest.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, 0,
			"the batch endpoint is JSON-only; for streaming answers use /v1/optimize/stream, one query per connection")
		return
	}
	var breq BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&breq); err != nil {
		s.ctr.badRequest.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, 0, "parsing batch: %v", err)
		return
	}
	if len(breq.Queries) == 0 {
		s.ctr.badRequest.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, 0, "batch carries no queries")
		return
	}
	if len(breq.Queries) > maxBatchItems {
		s.ctr.badRequest.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, 0,
			"batch carries %d queries, limit %d; split it client-side", len(breq.Queries), maxBatchItems)
		return
	}
	s.ctr.batchItems.Add(int64(len(breq.Queries)))

	s.inflight.Add(1)
	defer s.inflight.Done()

	arrived := s.cfg.now()
	forwarded := r.Header.Get(cluster.ForwardHeader) != ""
	items := make([]*batchItem, len(breq.Queries))
	for i := range breq.Queries {
		items[i] = s.prepareBatchItem(r, &breq, &breq.Queries[i], forwarded)
	}
	if !forwarded && s.cfg.Cluster != nil {
		s.forwardSubBatches(r.Context(), items)
	}
	s.solveBatchLocal(r.Context(), items, arrived)

	out := BatchResponse{Results: make([]BatchItem, len(items))}
	for i, it := range items {
		out.Results[i] = BatchItem{Index: i, Response: it.resp, Error: it.err}
		if it.err == nil && it.resp == nil {
			// Defensive: every item must resolve one way.
			out.Results[i].Error = &ErrorDetail{Code: CodeInternal, Message: "item produced no outcome"}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// prepareBatchItem runs the per-item ingress gates: parse, tenant rate
// limit (ingress only), fingerprint. A failed gate resolves the item
// immediately.
func (s *Server) prepareBatchItem(r *http.Request, breq *BatchRequest, req *OptimizeRequest, forwarded bool) *batchItem {
	it := &batchItem{req: req}
	s.ctr.requests.Add(1)
	q, err := req.query()
	if err != nil {
		s.ctr.badRequest.Add(1)
		it.fail(CodeBadRequest, err.Error(), 0)
		return it
	}
	opts, err := req.options(s.cfg)
	if err != nil {
		s.ctr.badRequest.Add(1)
		it.fail(CodeBadRequest, err.Error(), 0)
		return it
	}
	if !forwarded {
		tenant := req.tenant(r)
		if tenant == "" {
			tenant = breq.Tenant
		}
		if ok, wait := s.tb.allow(tenant, s.cfg.now()); !ok {
			s.ctr.rateLimited.Add(1)
			it.fail(CodeRateLimited, fmt.Sprintf("tenant %q over rate limit", tenant), wait)
			return it
		}
	}
	it.q, it.opts = q, opts
	if ce, err := cache.Canonicalize(q, cache.Exact); err == nil {
		it.fp = ce.Key
	}
	return it
}

// forwardSubBatches groups unresolved items by owning peer and ships
// each remote group as one sub-batch. Items whose forward fails (or
// whose sub-answer is malformed) stay unresolved and solve locally —
// the same fail-open rule as single-request forwarding.
func (s *Server) forwardSubBatches(ctx context.Context, items []*batchItem) {
	rt := s.cfg.Cluster
	groups := map[string][]*batchItem{}
	peers := map[string]cluster.Peer{}
	for _, it := range items {
		if it.err != nil || it.resp != nil || it.fp == "" {
			continue
		}
		if owner, remote := rt.Route(it.fp); remote {
			groups[owner.ID] = append(groups[owner.ID], it)
			peers[owner.ID] = owner
		}
	}
	var wg sync.WaitGroup
	for id, group := range groups {
		wg.Add(1)
		go func(peer cluster.Peer, group []*batchItem) {
			defer wg.Done()
			s.forwardOneSubBatch(ctx, peer, group)
		}(peers[id], group)
	}
	wg.Wait()
}

func (s *Server) forwardOneSubBatch(ctx context.Context, peer cluster.Peer, group []*batchItem) {
	sub := BatchRequest{Queries: make([]OptimizeRequest, len(group))}
	for i, it := range group {
		sub.Queries[i] = *it.req
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return // items stay unresolved; local solve picks them up
	}
	hdr := http.Header{}
	hdr.Set("Content-Type", "application/json")
	resp, err := s.cfg.Cluster.Forward(ctx, peer, "/v1/optimize/batch", hdr, body)
	if err != nil {
		s.log.Warn("cluster sub-batch forward failed; solving locally",
			"peer", peer.ID, "items", len(group), "err", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var bresp BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&bresp); err != nil || len(bresp.Results) != len(group) {
		return
	}
	for i, res := range bresp.Results {
		group[i].resp, group[i].err = res.Response, res.Error
	}
}

// solveBatchLocal answers every still-unresolved item here: one weighted
// admission ticket for the whole group, then concurrent solves bounded
// by the granted weight.
func (s *Server) solveBatchLocal(ctx context.Context, items []*batchItem, arrived time.Time) {
	var local []*batchItem
	maxBudget := time.Duration(0)
	for _, it := range items {
		if it.err == nil && it.resp == nil {
			local = append(local, it)
			if tl := it.opts.EffectiveBudget().TimeLimit; tl > maxBudget {
				maxBudget = tl
			}
		}
	}
	if len(local) == 0 {
		return
	}
	weight := min(len(local), s.cfg.MaxWorkers)
	deadline := arrived.Add(maxBudget)
	t, err := s.adm.admit(deadline, weight)
	if errors.Is(err, errSaturated) {
		// The queue is full: degrade willing items, envelope the rest.
		s.runBatchItems(ctx, local, s.cfg.MaxWorkers, arrived, true)
		return
	}
	waitCtx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	select {
	case <-t.ready:
	case <-waitCtx.Done():
		if s.adm.cancel(t) {
			retry := s.shedRetryAfter()
			for _, it := range local {
				if ctx.Err() != nil {
					s.ctr.canceled.Add(1)
					it.fail(CodeClientClosed, "client closed request", 0)
				} else {
					s.ctr.timeouts.Add(1)
					it.fail(CodeTimeout, "batch deadline expired in the admission queue", retry)
				}
			}
			return
		}
	}
	defer s.adm.release(t)
	queueWait := s.cfg.now().Sub(arrived)
	s.ctr.queueNanos.Add(int64(queueWait))
	s.runBatchItems(waitCtx, local, weight, arrived, false)
}

// runBatchItems solves items concurrently under a worker bound. shed
// marks the saturated path: items refusing degraded answers get the
// saturated envelope, the rest are answered by the fallback strategy.
func (s *Server) runBatchItems(ctx context.Context, items []*batchItem, workers int, arrived time.Time, shed bool) {
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it *batchItem) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pr := &prepared{
				req:     it.req,
				q:       it.q,
				opts:    it.opts,
				arrived: arrived,
				id:      fmt.Sprintf("r%06d", s.reqID.Add(1)),
			}
			var resp *OptimizeResponse
			var herr *httpError
			if shed {
				if !it.req.allowDegraded() {
					s.ctr.rejected.Add(1)
					it.fail(CodeSaturated, "admission queue saturated and request refuses degraded answers", s.shedRetryAfter())
					return
				}
				s.ctr.shed.Add(1)
				resp, herr = s.serveDegraded(ctx, pr, nil)
			} else {
				s.ctr.solves.Add(1)
				opts := it.opts
				solveStart := s.cfg.now()
				if dl, ok := ctx.Deadline(); ok {
					if remaining := dl.Sub(solveStart); remaining < opts.Budget.TimeLimit {
						opts.Budget.TimeLimit = max(remaining, time.Millisecond)
					}
				}
				resp, herr = s.runSolve(ctx, pr, opts, 0, nil)
			}
			if herr != nil {
				it.fail(herr.code, herr.msg, herr.retryAfter)
				return
			}
			it.resp = resp
		}(it)
	}
	wg.Wait()
}
