package joinorder_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"milpjoin/internal/workload"
	"milpjoin/joinorder"
)

// TestValidatePortfolioOptions: every invalid portfolio configuration is
// rejected up front with a typed error, before any member runs.
func TestValidatePortfolioOptions(t *testing.T) {
	q := smallQuery()
	cases := []struct {
		name string
		opts joinorder.Options
		want error
	}{
		{"non-auto strategy", joinorder.Options{Strategy: "greedy", Portfolio: []string{"milp"}}, joinorder.ErrInvalidOptions},
		{"default strategy", joinorder.Options{Portfolio: []string{"milp"}}, joinorder.ErrInvalidOptions},
		{"empty member list", joinorder.Options{Strategy: "auto", Portfolio: []string{}}, joinorder.ErrInvalidOptions},
		{"nested auto", joinorder.Options{Strategy: "auto", Portfolio: []string{"greedy", "auto"}}, joinorder.ErrInvalidOptions},
		{"empty member name", joinorder.Options{Strategy: "auto", Portfolio: []string{""}}, joinorder.ErrInvalidOptions},
		{"duplicate member", joinorder.Options{Strategy: "auto", Portfolio: []string{"greedy", "greedy"}}, joinorder.ErrInvalidOptions},
		{"unknown member", joinorder.Options{Strategy: "auto", Portfolio: []string{"quantum"}}, joinorder.ErrUnknownStrategy},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := joinorder.Optimize(context.Background(), q, tc.opts); !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestAutoDeterministicWinner: with a fixed seed and single-threaded
// members, the same race run twice yields the same winner, cost, and
// status.
func TestAutoDeterministicWinner(t *testing.T) {
	q := workload.Generate(workload.Star, 10, 2, workload.Config{})
	opts := joinorder.Options{
		Strategy:  "auto",
		Portfolio: []string{"dpconv", "greedy"},
		TimeLimit: 30 * time.Second,
		Threads:   1,
		Seed:      7,
	}
	run := func() *joinorder.Result {
		res, err := joinorder.Optimize(context.Background(), q, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Winner != b.Winner || a.Cost != b.Cost || a.Status != b.Status {
		t.Fatalf("nondeterministic race: (%q %g %v) vs (%q %g %v)",
			a.Winner, a.Cost, a.Status, b.Winner, b.Cost, b.Status)
	}
	if a.Strategy != "auto" {
		t.Errorf("strategy = %q, want auto", a.Strategy)
	}
	// The exact DP proves optimality, so it must win over the unproven
	// greedy answer (cheaper cost, or the stronger status on a tie).
	if a.Winner != "dpconv" {
		t.Errorf("winner = %q, want dpconv", a.Winner)
	}
	if a.Status != joinorder.StatusOptimal {
		t.Errorf("status = %v, want optimal", a.Status)
	}
	if a.Tree == nil {
		t.Error("no tree from the bushy winner")
	}
}

// TestAutoEventStreamCoherent: the merged portfolio event stream is
// renumbered race-wide, tags every member event with its strategy, holds
// the incumbent-monotonicity guarantee per member, and ends with a
// winner event matching the result.
func TestAutoEventStreamCoherent(t *testing.T) {
	q := workload.Generate(workload.Star, 12, 3, workload.Config{})
	var events []joinorder.Event
	res, err := joinorder.Optimize(context.Background(), q, joinorder.Options{
		Strategy:  "auto",
		TimeLimit: 10 * time.Second,
		Threads:   1,
		Seed:      1,
		OnEvent:   func(ev joinorder.Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events on the merged stream")
	}
	lastSeq := -1
	started := map[string]bool{}
	stopped := map[string]bool{}
	bestBy := map[string]float64{}
	var winnerEvents int
	for _, ev := range events {
		if ev.Seq <= lastSeq {
			t.Fatalf("race-wide sequence not increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Kind {
		case joinorder.KindStrategyStart:
			started[ev.Strategy] = true
		case joinorder.KindStrategyStop:
			stopped[ev.Strategy] = true
		case joinorder.KindWinner:
			winnerEvents++
			if ev.Strategy != res.Winner {
				t.Errorf("winner event names %q, result says %q", ev.Strategy, res.Winner)
			}
		case joinorder.KindIncumbent:
			if ev.Strategy == "" {
				t.Error("incumbent event without a strategy tag on a portfolio stream")
				continue
			}
			if ev.HasIncumbent {
				if last, ok := bestBy[ev.Strategy]; ok && ev.Incumbent > last*(1+1e-9) {
					t.Errorf("%s incumbent regressed: %g after %g", ev.Strategy, ev.Incumbent, last)
				}
				if last, ok := bestBy[ev.Strategy]; !ok || ev.Incumbent < last {
					bestBy[ev.Strategy] = ev.Incumbent
				}
			}
		}
	}
	for _, m := range joinorder.DefaultPortfolio() {
		if !started[m] || !stopped[m] {
			t.Errorf("member %s lifecycle incomplete: start=%v stop=%v", m, started[m], stopped[m])
		}
	}
	if winnerEvents != 1 {
		t.Errorf("winner events = %d, want exactly 1", winnerEvents)
	}
	if res.Winner == "" {
		t.Error("result carries no winner")
	}
	if res.Cost <= 0 || math.IsInf(res.Cost, 0) {
		t.Errorf("bad cost %g", res.Cost)
	}
}

// TestAutoCancellation: cancelling the race context before it starts
// returns ErrCanceled, not a partial result.
func TestAutoCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := joinorder.Optimize(ctx, largeQuery(), joinorder.Options{Strategy: "auto"})
	if !errors.Is(err, joinorder.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestAutoOnPlanSurfacesMembers: the caller's OnPlan callback observes
// member improvements tagged with the member name.
func TestAutoOnPlanSurfacesMembers(t *testing.T) {
	q := workload.Generate(workload.Star, 10, 4, workload.Config{})
	byStrategy := map[string]int{}
	_, err := joinorder.Optimize(context.Background(), q, joinorder.Options{
		Strategy:  "auto",
		Portfolio: []string{"gradient", "greedy"},
		TimeLimit: 20 * time.Second,
		Threads:   1,
		Seed:      2,
		OnPlan: func(u joinorder.PlanUpdate) {
			byStrategy[u.Strategy]++
			if u.Plan == nil {
				t.Error("plan update without a plan")
			}
			if err := u.Plan.Validate(q); err != nil {
				t.Errorf("invalid %s plan: %v", u.Strategy, err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"gradient", "greedy"} {
		if byStrategy[m] == 0 {
			t.Errorf("no OnPlan updates from %s", m)
		}
	}
}
