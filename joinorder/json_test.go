package joinorder

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

// TestResultJSONRoundTrip checks that a Result survives the wire format
// the serving daemon speaks: marshal → unmarshal restores every field a
// client consumes, with nulls mapping back to non-finite sentinels.
func TestResultJSONRoundTrip(t *testing.T) {
	in := &Result{
		Strategy: "milp",
		Status:   StatusTimeLimit,
		Plan: &Plan{
			Order:     []int{2, 0, 1},
			Operators: []Operator{HashJoin, SortMergeJoin},
		},
		Cost:      123.5,
		Bound:     100,
		Gap:       0.19,
		Objective: 123.5,
		Nodes:     17,
		Elapsed:   1500 * time.Millisecond,
		MIPStart:  "plan",
		Winner:    "milp",
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Result
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Strategy != in.Strategy || out.Status != in.Status || out.Cost != in.Cost ||
		out.Bound != in.Bound || out.Gap != in.Gap || out.Nodes != in.Nodes {
		t.Errorf("round trip lost fields: %+v", out)
	}
	if out.MIPStart != in.MIPStart || out.Winner != in.Winner {
		t.Errorf("provenance lost: mip_start=%q winner=%q", out.MIPStart, out.Winner)
	}
	if out.Elapsed != in.Elapsed {
		t.Errorf("elapsed = %v, want %v", out.Elapsed, in.Elapsed)
	}
	if out.Plan == nil || len(out.Plan.Order) != 3 || out.Plan.Order[0] != 2 {
		t.Fatalf("plan order lost: %+v", out.Plan)
	}
	if len(out.Plan.Operators) != 2 || out.Plan.Operators[1] != SortMergeJoin {
		t.Errorf("operators lost: %v", out.Plan.Operators)
	}
}

// TestResultJSONNonFinite checks the null ↔ sentinel mapping for a
// heuristic result that certifies nothing.
func TestResultJSONNonFinite(t *testing.T) {
	in := &Result{
		Strategy: "greedy",
		Status:   StatusFeasible,
		Plan:     &Plan{Order: []int{0, 1}},
		Cost:     10,
		Bound:    math.Inf(-1),
		Gap:      math.Inf(1),
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Result
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(out.Bound, -1) || !math.IsInf(out.Gap, 1) {
		t.Errorf("sentinels not restored: bound=%v gap=%v", out.Bound, out.Gap)
	}
}

func TestStatusJSONRoundTrip(t *testing.T) {
	for _, s := range []Status{StatusOptimal, StatusFeasible, StatusTimeLimit, StatusCanceled} {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var out Status
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if out != s {
			t.Errorf("round trip %v → %v", s, out)
		}
	}
	var bad Status
	if err := json.Unmarshal([]byte(`"definitely-not-a-status"`), &bad); err == nil {
		t.Error("unknown status accepted")
	}
}
