package joinorder_test

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"milpjoin/joinorder"
)

// eventRecorder collects the event stream of one Optimize call and checks,
// inside the callback, that events arrive serialised: the mutex would not
// protect against concurrent delivery, but the race detector flags it.
type eventRecorder struct {
	mu     sync.Mutex
	events []joinorder.Event
}

func (r *eventRecorder) record(ev joinorder.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

// checkStream asserts the documented event-stream invariants: sequence
// numbers increase by one, elapsed times and bounds never regress, and
// incumbents never worsen.
func checkStream(t *testing.T, events []joinorder.Event) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("no events observed")
	}
	inc := math.Inf(1)
	bound := math.Inf(-1)
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, ev.Seq)
		}
		if ev.HasIncumbent {
			if ev.Incumbent > inc+1e-9 {
				t.Fatalf("event %d: incumbent worsened %g -> %g", i, inc, ev.Incumbent)
			}
			inc = ev.Incumbent
		}
		// Presolve and cut-round events fire before branch and bound and
		// carry a -Inf bound placeholder; the monotone-bound guarantee
		// covers the search-phase events.
		if ev.Kind == joinorder.KindPresolve || ev.Kind == joinorder.KindCutRound {
			continue
		}
		if ev.Bound < bound-1e-9 {
			t.Fatalf("event %d (%v): bound regressed %g -> %g", i, ev.Kind, bound, ev.Bound)
		}
		bound = ev.Bound
	}
}

func TestConcurrentOptimizeEventStreams(t *testing.T) {
	q := smallQuery() // shared across goroutines on purpose
	const runs = 4

	var wg sync.WaitGroup
	recorders := make([]*eventRecorder, runs)
	results := make([]*joinorder.Result, runs)
	errs := make([]error, runs)
	for i := 0; i < runs; i++ {
		rec := &eventRecorder{}
		recorders[i] = rec
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = joinorder.Optimize(context.Background(), q, joinorder.Options{
				Strategy:  "milp",
				Threads:   2,
				TimeLimit: 30 * time.Second,
				OnEvent:   rec.record,
			})
		}(i)
	}
	wg.Wait()

	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		events := recorders[i].events
		checkStream(t, events)

		kinds := make(map[joinorder.EventKind]int)
		for _, ev := range events {
			kinds[ev.Kind]++
		}
		if kinds[joinorder.KindIncumbent] == 0 {
			t.Errorf("run %d: no incumbent event", i)
		}
		if kinds[joinorder.KindWorkerStart] == 0 || kinds[joinorder.KindWorkerStop] == 0 {
			t.Errorf("run %d: missing worker lifecycle events: %v", i, kinds)
		}

		st := results[i].Stats
		if st == nil {
			t.Fatalf("run %d: milp result has nil Stats", i)
		}
		if st.Events != len(events) {
			t.Errorf("run %d: Stats.Events = %d, observed %d", i, st.Events, len(events))
		}
		if st.Workers != 2 || len(st.NodesPerWorker) != 2 {
			t.Errorf("run %d: Stats workers = %d (%v), want 2", i, st.Workers, st.NodesPerWorker)
		}
		if st.TotalTime <= 0 || st.SimplexIters <= 0 {
			t.Errorf("run %d: Stats not populated: %+v", i, st)
		}
	}
}

// TestEventStreamAnytimeTrajectory pins the contract the retired
// OnProgress adapter used to re-export: the incumbent/bound events alone
// reconstruct the anytime trajectory, improvements never worsen, and a
// proven-optimal run ends with a closed gap on the stream.
func TestEventStreamAnytimeTrajectory(t *testing.T) {
	q := smallQuery()
	rec := &eventRecorder{}
	res, err := joinorder.Optimize(context.Background(), q, joinorder.Options{
		Strategy: "milp",
		Budget:   joinorder.Budget{TimeLimit: 30 * time.Second},
		OnEvent:  rec.record,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != joinorder.StatusOptimal {
		t.Fatalf("status %v, want optimal", res.Status)
	}
	var improvements []joinorder.Event
	for _, ev := range rec.events {
		if ev.Kind == joinorder.KindIncumbent || ev.Kind == joinorder.KindBound {
			improvements = append(improvements, ev)
		}
	}
	if len(improvements) == 0 {
		t.Fatal("no incumbent/bound events on the stream")
	}
	prev := math.Inf(1)
	for i, ev := range improvements {
		if !ev.HasIncumbent {
			continue
		}
		if ev.Incumbent > prev+1e-9 {
			t.Fatalf("improvement %d: incumbent worsened (%g after %g)", i, ev.Incumbent, prev)
		}
		prev = ev.Incumbent
	}
	last := improvements[len(improvements)-1]
	if !last.HasIncumbent {
		t.Fatalf("final improvement event has no incumbent: %+v", last)
	}
	if last.Incumbent != res.Objective {
		t.Fatalf("final stream incumbent %g != result objective %g", last.Incumbent, res.Objective)
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	q := smallQuery()
	res, err := joinorder.Optimize(context.Background(), q, joinorder.Options{
		Strategy:  "milp",
		TimeLimit: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Strategy string `json:"strategy"`
		Status   string `json:"status"`
		Plan     *struct {
			Order []int  `json:"order"`
			Text  string `json:"text"`
		} `json:"plan"`
		Cost  *float64 `json:"cost"`
		Stats *struct {
			TotalSec     float64 `json:"total_sec"`
			SimplexIters int     `json:"simplex_iters"`
			Workers      int     `json:"workers"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("result JSON does not parse: %v\n%s", err, data)
	}
	if doc.Strategy != "milp" || doc.Status != "optimal" {
		t.Errorf("strategy/status = %q/%q", doc.Strategy, doc.Status)
	}
	if doc.Plan == nil || len(doc.Plan.Order) != q.NumTables() {
		t.Errorf("plan missing or wrong length: %+v", doc.Plan)
	}
	if doc.Cost == nil || *doc.Cost <= 0 {
		t.Errorf("cost missing: %v", doc.Cost)
	}
	if doc.Stats == nil || doc.Stats.SimplexIters <= 0 || doc.Stats.TotalSec <= 0 {
		t.Errorf("stats missing or empty: %+v", doc.Stats)
	}
	if !strings.Contains(res.String(), "milp: optimal") {
		t.Errorf("Result.String() = %q", res.String())
	}
}
