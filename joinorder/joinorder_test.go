package joinorder_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"milpjoin/internal/workload"
	"milpjoin/joinorder"
)

// smallQuery is cheap enough for every strategy, including exact DP and a
// full MILP solve.
func smallQuery() *joinorder.Query {
	return workload.Generate(workload.Star, 7, 3, workload.Config{})
}

// largeQuery produces a MILP far beyond what the solver proves optimal in
// milliseconds, so cancellation reliably lands mid-solve.
func largeQuery() *joinorder.Query {
	return workload.Generate(workload.Star, 22, 1, workload.Config{})
}

func TestEveryRegisteredStrategyOptimizes(t *testing.T) {
	q := smallQuery()
	for _, name := range joinorder.Strategies() {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := joinorder.Optimize(context.Background(), q, joinorder.Options{
				Strategy:  name,
				TimeLimit: 30 * time.Second,
				Seed:      1,
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.Strategy != name {
				t.Errorf("result strategy %q, want %q", res.Strategy, name)
			}
			if res.Tree == nil {
				t.Fatalf("%s: nil tree on success", name)
			}
			// The bushy-capable strategies (dp-bushy, dpconv, and auto
			// when a bushy member wins) return a Tree and only attach a
			// Plan when the optimum happens to be left-deep.
			bushyCapable := name == "dp-bushy" || name == "dpconv" || name == "auto"
			if !bushyCapable && res.Plan == nil {
				t.Fatalf("%s: nil plan on success", name)
			}
			if res.Plan != nil {
				if err := res.Plan.Validate(q); err != nil {
					t.Errorf("%s: invalid plan: %v", name, err)
				}
			}
			if res.Cost <= 0 {
				t.Errorf("%s: non-positive cost %g", name, res.Cost)
			}
		})
	}
}

func TestRequiredStrategiesRegistered(t *testing.T) {
	for _, name := range []string{"milp", "dp-leftdeep", "dp-bushy", "ikkbz", "greedy"} {
		if _, err := joinorder.Lookup(name); err != nil {
			t.Errorf("required strategy %q not registered: %v", name, err)
		}
		if joinorder.Describe(name) == "" {
			t.Errorf("strategy %q has no description", name)
		}
	}
	if _, err := joinorder.Lookup(""); err != nil {
		t.Errorf("empty name should resolve to the default strategy: %v", err)
	}
}

// TestCancelMidSolveReturnsIncumbent is the anytime contract: cancelling
// the context mid-solve returns promptly with StatusCanceled and the best
// incumbent found so far plus a proven bound.
func TestCancelMidSolveReturnsIncumbent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	canceled := make(chan time.Time, 1)
	go func() {
		time.Sleep(300 * time.Millisecond)
		canceled <- time.Now()
		cancel()
	}()

	res, err := joinorder.Optimize(ctx, largeQuery(), joinorder.Options{
		Strategy:  "milp",
		Precision: joinorder.PrecisionHigh,
		Threads:   2,
	})
	returned := time.Now()
	if err != nil {
		t.Fatalf("cancellation should return the incumbent, got error: %v", err)
	}
	if res.Status != joinorder.StatusCanceled {
		t.Errorf("status = %v, want %v", res.Status, joinorder.StatusCanceled)
	}
	if res.Plan == nil {
		t.Fatal("no incumbent plan returned on cancellation")
	}
	if math.IsNaN(res.Bound) || math.IsNaN(res.Cost) {
		t.Errorf("NaN in result: bound %g, cost %g", res.Bound, res.Cost)
	}
	// The stack polls the context every few simplex iterations, so the
	// unwind target is ~200ms; allow slack for race-instrumented CI.
	if latency := returned.Sub(<-canceled); latency > time.Second {
		t.Errorf("returned %v after cancellation, want well under a second", latency)
	}
}

// TestExpiredContextReturnsImmediately: a context that has already ended
// must not start branch and bound at all.
func TestExpiredContextReturnsImmediately(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	start := time.Now()
	_, err := joinorder.Optimize(ctx, largeQuery(), joinorder.Options{Strategy: "milp"})
	if !errors.Is(err, joinorder.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// Encoding the query is allowed; solving is not. The full MILP solve
	// takes minutes on this query, so a sub-second return proves branch
	// and bound never ran.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("took %v with an expired deadline", elapsed)
	}
}

// TestDPCancellation: the DP baselines are not anytime — cancellation
// yields ErrCanceled and no partial plan.
func TestDPCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{"dp-leftdeep", "dp-bushy"} {
		res, err := joinorder.Optimize(ctx, smallQuery(), joinorder.Options{Strategy: name})
		if !errors.Is(err, joinorder.ErrCanceled) {
			t.Errorf("%s: err = %v, want ErrCanceled", name, err)
		}
		if res != nil {
			t.Errorf("%s: non-nil result %+v alongside cancellation", name, res)
		}
	}
}

func TestInvalidInputTypedErrors(t *testing.T) {
	ctx := context.Background()
	q := smallQuery()

	if _, err := joinorder.Optimize(ctx, nil, joinorder.Options{}); !errors.Is(err, joinorder.ErrInvalidQuery) {
		t.Errorf("nil query: err = %v, want ErrInvalidQuery", err)
	}
	single := &joinorder.Query{Tables: []joinorder.Table{{Name: "A", Card: 10}}}
	if _, err := joinorder.Optimize(ctx, single, joinorder.Options{}); !errors.Is(err, joinorder.ErrInvalidQuery) {
		t.Errorf("single-table query: err = %v, want ErrInvalidQuery", err)
	}
	if _, err := joinorder.Optimize(ctx, q, joinorder.Options{Strategy: "quantum"}); !errors.Is(err, joinorder.ErrUnknownStrategy) {
		t.Errorf("unknown strategy: err = %v, want ErrUnknownStrategy", err)
	}
	// Bad option values return ErrInvalidOptions — the panics these used
	// to raise deep in the encoder are gone.
	for _, opts := range []joinorder.Options{
		{ThresholdRatio: 0.5},
		{Precision: joinorder.Precision(42)},
		{TimeLimit: -time.Second},
		{Threads: -1},
		{GapTol: -0.1},
		{InterestingOrders: true},
		{Metric: joinorder.Metric(9)},
	} {
		if _, err := joinorder.Optimize(ctx, q, opts); !errors.Is(err, joinorder.ErrInvalidOptions) {
			t.Errorf("opts %+v: err = %v, want ErrInvalidOptions", opts, err)
		}
	}
}

func TestRegisterRejectsDuplicatesAndEmptyNames(t *testing.T) {
	if err := joinorder.Register(testStrategy{name: ""}); !errors.Is(err, joinorder.ErrInvalidOptions) {
		t.Errorf("empty name: err = %v", err)
	}
	if err := joinorder.Register(testStrategy{name: "milp"}); !errors.Is(err, joinorder.ErrInvalidOptions) {
		t.Errorf("duplicate name: err = %v", err)
	}
}

type testStrategy struct{ name string }

func (s testStrategy) Name() string        { return s.name }
func (s testStrategy) Description() string { return "test" }
func (s testStrategy) Optimize(context.Context, *joinorder.Query, joinorder.Options) (*joinorder.Result, error) {
	return nil, nil
}

// TestTimeLimitReturnsIncumbent: Options.TimeLimit alone (no context
// deadline) also yields anytime behaviour on a query too large to finish.
func TestTimeLimitReturnsIncumbent(t *testing.T) {
	res, err := joinorder.Optimize(context.Background(), largeQuery(), joinorder.Options{
		Strategy:  "milp",
		TimeLimit: 300 * time.Millisecond,
		Threads:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != joinorder.StatusTimeLimit {
		t.Errorf("status = %v, want %v", res.Status, joinorder.StatusTimeLimit)
	}
	if res.Plan == nil {
		t.Fatal("no incumbent plan at the time limit")
	}
}

// TestContextDeadlineMapsToTimeLimit: a context deadline is a time budget,
// so it reports StatusTimeLimit — indistinguishable from Options.TimeLimit.
func TestContextDeadlineMapsToTimeLimit(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	res, err := joinorder.Optimize(ctx, largeQuery(), joinorder.Options{
		Strategy: "milp",
		Threads:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != joinorder.StatusTimeLimit {
		t.Errorf("status = %v, want %v", res.Status, joinorder.StatusTimeLimit)
	}
	if res.Plan == nil {
		t.Fatal("no incumbent plan at the context deadline")
	}
}
