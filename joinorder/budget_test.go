package joinorder_test

import (
	"testing"
	"time"

	"milpjoin/joinorder"
)

// TestEffectiveBudgetPrecedence: each non-zero Budget field wins over its
// deprecated flat alias; a zero Budget field falls back to the alias.
func TestEffectiveBudgetPrecedence(t *testing.T) {
	opts := joinorder.Options{
		Budget:    joinorder.Budget{TimeLimit: 2 * time.Second, MaxNodes: 500},
		TimeLimit: 9 * time.Second, // loses to Budget.TimeLimit
		GapTol:    1e-3,            // wins: Budget.GapTol is zero
		MaxNodes:  9999,            // loses to Budget.MaxNodes
		Threads:   8,               // wins: Budget.Threads is zero
	}
	got := opts.EffectiveBudget()
	want := joinorder.Budget{TimeLimit: 2 * time.Second, GapTol: 1e-3, MaxNodes: 500, Threads: 8}
	if got != want {
		t.Errorf("EffectiveBudget() = %+v, want %+v", got, want)
	}

	// Pure flat options resolve unchanged.
	flat := joinorder.Options{TimeLimit: time.Second, GapTol: 1e-4, MaxNodes: 10, Threads: 2}
	if got := flat.EffectiveBudget(); got != (joinorder.Budget{TimeLimit: time.Second, GapTol: 1e-4, MaxNodes: 10, Threads: 2}) {
		t.Errorf("flat EffectiveBudget() = %+v", got)
	}
	if !(joinorder.Options{}).EffectiveBudget().IsZero() {
		t.Error("zero options resolve to a non-zero budget")
	}
}

// TestBudgetScaleSplit: divisible resources scale with floors; per-solve
// qualities pass through.
func TestBudgetScaleSplit(t *testing.T) {
	b := joinorder.Budget{TimeLimit: time.Second, GapTol: 1e-3, MaxNodes: 100, Threads: 4}
	half := b.Scale(0.5)
	if half.TimeLimit != 500*time.Millisecond || half.MaxNodes != 50 {
		t.Errorf("Scale(0.5) = %+v", half)
	}
	if half.GapTol != b.GapTol || half.Threads != b.Threads {
		t.Errorf("Scale touched per-solve qualities: %+v", half)
	}
	// A tiny fraction of a set budget floors at 1ms / 1 node instead of
	// becoming zero ("unlimited").
	tiny := b.Scale(1e-9)
	if tiny.TimeLimit != time.Millisecond || tiny.MaxNodes != 1 {
		t.Errorf("Scale(1e-9) = %+v, want 1ms / 1 node floors", tiny)
	}
	// Unset resources stay unset: zero must not become a 1ms cap.
	unset := joinorder.Budget{GapTol: 1e-3}.Scale(0.25)
	if unset.TimeLimit != 0 || unset.MaxNodes != 0 {
		t.Errorf("Scale set unset resources: %+v", unset)
	}
	if got := b.Split(4).TimeLimit; got != 250*time.Millisecond {
		t.Errorf("Split(4).TimeLimit = %v", got)
	}
	if got := b.Split(1); got != b {
		t.Errorf("Split(1) = %+v, want unchanged", got)
	}
}
