package joinorder

import (
	"fmt"
	"time"
)

// Budget bundles every resource limit of one optimization run: wall-clock
// time, the proven-gap tolerance at which the search may stop, the
// branch-and-bound node cap, and the parallel worker count. Carrying the
// four knobs as one value lets callers (and the hybrid decomposer) split,
// scale, and forward a budget without tracking parallel fields.
//
// A zero field means "not set": the corresponding deprecated flat Options
// field (TimeLimit, GapTol, MaxNodes, Threads) applies instead, and when
// both are zero the strategy default does. A non-zero Budget field always
// wins over its flat alias — the precedence rule Options.Validate
// documents and enforces type checks for.
type Budget struct {
	// TimeLimit bounds wall-clock time (zero: none). It composes with
	// the context deadline: the effective budget is the minimum.
	TimeLimit time.Duration
	// GapTol is the relative optimality gap at which the MILP search
	// stops (zero: the 1e-6 default).
	GapTol float64
	// MaxNodes bounds explored branch-and-bound nodes (zero: none).
	MaxNodes int
	// Threads is the parallel worker count for strategies that support
	// it (zero: 1).
	Threads int
}

// IsZero reports whether no budget field is set.
func (b Budget) IsZero() bool {
	return b.TimeLimit == 0 && b.GapTol == 0 && b.MaxNodes == 0 && b.Threads == 0
}

// validate rejects negative fields; zero means unset and is always valid.
func (b Budget) validate() error {
	if b.TimeLimit < 0 {
		return fmt.Errorf("%w: negative budget time limit %v", ErrInvalidOptions, b.TimeLimit)
	}
	if b.GapTol < 0 {
		return fmt.Errorf("%w: negative budget gap tolerance %g", ErrInvalidOptions, b.GapTol)
	}
	if b.MaxNodes < 0 {
		return fmt.Errorf("%w: negative budget node limit %d", ErrInvalidOptions, b.MaxNodes)
	}
	if b.Threads < 0 {
		return fmt.Errorf("%w: negative budget thread count %d", ErrInvalidOptions, b.Threads)
	}
	return nil
}

// Scale returns a copy with the divisible resources (TimeLimit, MaxNodes)
// scaled by f, flooring non-zero values at 1ms / 1 node so a fraction of a
// set budget never silently becomes "unlimited". GapTol and Threads are
// per-solve qualities, not divisible quantities, and pass through.
func (b Budget) Scale(f float64) Budget {
	out := b
	if b.TimeLimit > 0 {
		out.TimeLimit = time.Duration(float64(b.TimeLimit) * f)
		if out.TimeLimit < time.Millisecond {
			out.TimeLimit = time.Millisecond
		}
	}
	if b.MaxNodes > 0 {
		out.MaxNodes = int(float64(b.MaxNodes) * f)
		if out.MaxNodes < 1 {
			out.MaxNodes = 1
		}
	}
	return out
}

// Split divides the budget into n equal shares (n <= 1 returns the budget
// unchanged).
func (b Budget) Split(n int) Budget {
	if n <= 1 {
		return b
	}
	return b.Scale(1 / float64(n))
}

// EffectiveBudget resolves the run's resource limits: each Budget field,
// falling back to its deprecated flat Options alias when zero. All
// strategies, the cache, and the server read budgets through this one
// resolution, so the precedence rule holds everywhere.
func (o Options) EffectiveBudget() Budget {
	b := o.Budget
	if b.TimeLimit == 0 {
		b.TimeLimit = o.TimeLimit
	}
	if b.GapTol == 0 {
		b.GapTol = o.GapTol
	}
	if b.MaxNodes == 0 {
		b.MaxNodes = o.MaxNodes
	}
	if b.Threads == 0 {
		b.Threads = o.Threads
	}
	return b
}
