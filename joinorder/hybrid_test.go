package joinorder_test

import (
	"context"
	"math"
	"testing"
	"time"

	"milpjoin/internal/obs"
	"milpjoin/internal/workload"
	"milpjoin/joinorder"
)

// TestHybridLargeSnowflake: the headline capability — a 120-table query
// gets a feasible stitched plan with a finite lower bound inside a 5s
// budget, far beyond what the monolithic exact or MILP strategies reach.
func TestHybridLargeSnowflake(t *testing.T) {
	q := workload.Generate(workload.Snowflake, 120, 1, workload.Config{})
	start := time.Now()
	res, err := joinorder.Optimize(context.Background(), q, joinorder.Options{
		Strategy: "hybrid",
		Budget:   joinorder.Budget{TimeLimit: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 8*time.Second {
		t.Errorf("took %v, want well under the 5s budget plus slack", elapsed)
	}
	if res.Plan == nil || len(res.Plan.Order) != 120 {
		t.Fatal("no complete plan returned")
	}
	if err := res.Plan.Validate(q); err != nil {
		t.Fatalf("invalid plan: %v", err)
	}
	if math.IsInf(res.Bound, 0) || math.IsNaN(res.Bound) || res.Bound < 0 {
		t.Errorf("bound %g not finite", res.Bound)
	}
	if res.Cost <= 0 || math.IsInf(res.Cost, 0) {
		t.Errorf("cost %g", res.Cost)
	}
	if res.Bound > res.Cost {
		t.Errorf("bound %g above cost %g", res.Bound, res.Cost)
	}
	if res.Strategy != "hybrid" || res.Tree == nil {
		t.Errorf("strategy %q tree %v", res.Strategy, res.Tree != nil)
	}
}

// TestHybridSmallMatchesExactBound: under the partition cap the hybrid
// takes the exact path — its bound equals the bushy optimum from dpconv.
func TestHybridSmallMatchesExactBound(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		q := workload.Generate(workload.Star, 8, seed, workload.Config{})
		res, err := joinorder.Optimize(context.Background(), q, joinorder.Options{Strategy: "hybrid"})
		if err != nil {
			t.Fatal(err)
		}
		exact, err := joinorder.Optimize(context.Background(), q, joinorder.Options{Strategy: "dpconv"})
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(res.Bound-exact.Cost) / exact.Cost; diff > 1e-9 {
			t.Errorf("seed %d: hybrid bound %g, bushy optimum %g", seed, res.Bound, exact.Cost)
		}
		if res.Cost < res.Bound*(1-1e-9) {
			t.Errorf("seed %d: cost %g below bound %g", seed, res.Cost, res.Bound)
		}
		if res.Status == joinorder.StatusOptimal && math.Abs(res.Cost-res.Bound)/exact.Cost > 1e-9 {
			t.Errorf("seed %d: optimal status but cost %g != bound %g", seed, res.Cost, res.Bound)
		}
	}
}

// TestHybridAnytimeSurface: every improvement flows through OnPlan and
// OnEvent with monotone costs ending at the final result.
func TestHybridAnytimeSurface(t *testing.T) {
	q := workload.Generate(workload.Transitive, 40, 5, workload.Config{})
	var planCosts []float64
	var eventCosts []float64
	res, err := joinorder.Optimize(context.Background(), q, joinorder.Options{
		Strategy:     "hybrid",
		Budget:       joinorder.Budget{TimeLimit: 5 * time.Second},
		PartitionCap: 8,
		OnPlan: func(u joinorder.PlanUpdate) {
			if u.Strategy != "hybrid" {
				t.Errorf("plan update from %q", u.Strategy)
			}
			planCosts = append(planCosts, u.Cost)
		},
		OnEvent: func(ev joinorder.Event) {
			if ev.Kind == obs.KindIncumbent {
				eventCosts = append(eventCosts, ev.Incumbent)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(planCosts) == 0 || len(eventCosts) == 0 {
		t.Fatalf("no anytime traffic: %d plan updates, %d incumbent events", len(planCosts), len(eventCosts))
	}
	for i := 1; i < len(planCosts); i++ {
		if planCosts[i] > planCosts[i-1] {
			t.Fatalf("plan updates not monotone: %v", planCosts)
		}
	}
	if last := planCosts[len(planCosts)-1]; last != res.Cost {
		t.Errorf("last update %g, final cost %g", last, res.Cost)
	}
}

// TestHybridInPortfolio: hybrid races as an explicit auto member and the
// portfolio completes with a valid winner.
func TestHybridInPortfolio(t *testing.T) {
	q := workload.Generate(workload.Snowflake, 40, 2, workload.Config{})
	res, err := joinorder.Optimize(context.Background(), q, joinorder.Options{
		Strategy:  "auto",
		Portfolio: []string{"hybrid", "greedy"},
		Budget:    joinorder.Budget{TimeLimit: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "hybrid" && res.Winner != "greedy" {
		t.Errorf("winner %q", res.Winner)
	}
	if res.Tree == nil {
		t.Error("no tree from portfolio race")
	}
	if err := res.Tree.Validate(q); err != nil {
		t.Errorf("invalid winning tree: %v", err)
	}
}
