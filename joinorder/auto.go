package joinorder

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"milpjoin/internal/dp"
	"milpjoin/internal/obs"
	"milpjoin/internal/portfolio"
)

func init() {
	mustRegister("auto", "portfolio race of strategies with live incumbent injection into the MILP", optimizeAuto)
}

// DefaultPortfolio lists the members the "auto" strategy races when
// Options.Portfolio is nil: the anytime MILP (the only member with proven
// bounds, and the injection target), the pruning exact DP, the
// gradient-descent heuristic, and the instant greedy seed.
func DefaultPortfolio() []string {
	return []string{"milp", "dpconv", "gradient", "greedy"}
}

// memberOutcome is one member's terminal state in the race.
type memberOutcome struct {
	name string
	res  *Result
	err  error
}

// optimizeAuto races the portfolio members concurrently on one query over
// a shared incumbent bus: every member publishes each plan improvement
// with its exact cost, the MILP member drains the bus as live MIP starts
// (injected at branch-and-bound node boundaries), and the pruning exact DP
// uses the bus incumbent as its cutoff. The race stops at the first
// optimality proof — a member returning StatusOptimal, or dpconv proving
// no plan beats the bus incumbent — which cancels the remaining members;
// the returned Result is the cheapest plan any member produced, with
// Winner naming its member.
func optimizeAuto(ctx context.Context, q *Query, opts Options) (*Result, error) {
	members := opts.Portfolio
	if len(members) == 0 {
		members = DefaultPortfolio()
	}
	start := time.Now()
	bus := portfolio.NewBus()
	defer bus.Close()
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// One merged, re-sequenced event stream: member events keep their own
	// elapsed times but are renumbered race-wide, tagged with the member
	// in Event.Strategy.
	var emitter *obs.Emitter
	if opts.OnEvent != nil {
		onEvent := opts.OnEvent
		emitter = obs.NewEmitter(start, func(ev Event) { onEvent(ev) })
	}
	lifecycle := func(kind EventKind, member string) {
		if emitter == nil {
			return
		}
		_, cost, _ := bus.Best()
		bound, _ := bus.BestBound()
		emitter.Emit(Event{
			Kind:         kind,
			Worker:       -1,
			Strategy:     member,
			Incumbent:    cost,
			Bound:        bound,
			Gap:          obs.RelGap(cost, bound),
			HasIncumbent: !math.IsInf(cost, 1),
		})
	}

	outcomes := make(chan memberOutcome, len(members))
	var (
		wg     sync.WaitGroup
		planMu sync.Mutex // serialises the caller's OnPlan across members
	)
	for i, name := range members {
		mopts := opts
		mopts.Strategy = name
		mopts.Portfolio = nil
		// De-correlate the randomized members deterministically.
		mopts.Seed = opts.Seed + int64(i)
		member := name
		// Publications flow to the bus first (so peers see them even
		// with no caller callback), then to the caller's OnPlan —
		// serialised across members like the merged event stream.
		callerOnPlan := opts.OnPlan
		mopts.OnPlan = func(u PlanUpdate) {
			bus.Publish(member, u.Plan, u.Cost)
			if callerOnPlan != nil {
				planMu.Lock()
				callerOnPlan(u)
				planMu.Unlock()
			}
		}
		if emitter != nil {
			mopts.OnEvent = func(ev Event) {
				ev.Strategy = member
				ev.Seq = 0 // renumbered race-wide
				emitter.Emit(ev)
			}
		} else {
			mopts.OnEvent = nil
		}
		switch member {
		case "milp":
			mopts.incumbents = bus.Subscribe(member)
		case "dpconv":
			mopts.cutoff = bus.BestCost
		}
		o, err := Lookup(member)
		if err != nil {
			outcomes <- memberOutcome{name: member, err: err}
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			lifecycle(KindStrategyStart, member)
			res, rerr := o.Optimize(raceCtx, q, mopts)
			if rerr == nil {
				if res.Plan != nil {
					bus.Publish(member, res.Plan, res.Cost)
				}
				if res.Status == StatusOptimal && !math.IsInf(res.Bound, 0) && res.Objective == res.Cost {
					// Exact-space proof (the DP members): the bound is
					// valid portfolio-wide. MILP bounds live in the
					// approximated objective space and stay local.
					bus.PublishBound(member, res.Bound)
				}
			}
			lifecycle(KindStrategyStop, member)
			outcomes <- memberOutcome{name: member, res: res, err: rerr}
		}()
	}

	var (
		best      *Result
		winner    string
		memberErr error
	)
	order := func(name string) int {
		for i, m := range members {
			if m == name {
				return i
			}
		}
		return len(members)
	}
	statusRank := func(s Status) int {
		switch s {
		case StatusOptimal:
			return 0
		case StatusFeasible:
			return 1
		case StatusTimeLimit:
			return 2
		default:
			return 3
		}
	}
	// better orders candidate results: cheapest exact cost first, then the
	// strongest status (a proof beats an unproven plan of equal cost),
	// then a finite lower bound (a time-limited MILP with a proven gap is
	// more informative than a heuristic's bare plan at the same cost),
	// then configured member order — keeping ties deterministic.
	better := func(res *Result, name string) bool {
		if best == nil {
			return true
		}
		if res.Cost != best.Cost {
			return res.Cost < best.Cost
		}
		if res.Status == StatusOptimal || best.Status == StatusOptimal {
			if r, b := statusRank(res.Status), statusRank(best.Status); r != b {
				return r < b
			}
		}
		if rb, bb := !math.IsInf(res.Bound, -1), !math.IsInf(best.Bound, -1); rb != bb {
			return rb
		}
		if r, b := statusRank(res.Status), statusRank(best.Status); r != b {
			return r < b
		}
		return order(name) < order(winner)
	}
	for range members {
		out := <-outcomes
		if out.err != nil {
			if errors.Is(out.err, dp.ErrNoneBetter) {
				// The pruning DP proved nothing beats the bus incumbent:
				// the racing plan is optimal over the bushy plan space.
				if pl, cost, from := bus.Best(); pl != nil {
					res := &Result{
						Strategy:  out.name,
						Status:    StatusOptimal,
						Plan:      pl,
						Tree:      pl.LeftDeep(),
						Cost:      cost,
						Objective: cost,
						Bound:     cost,
						Gap:       0,
						Elapsed:   time.Since(start),
					}
					if better(res, from) {
						best, winner = res, from
					}
					cancel()
				}
				continue
			}
			if memberErr == nil && !errors.Is(out.err, ErrCanceled) {
				memberErr = fmt.Errorf("portfolio member %q: %w", out.name, out.err)
			}
			continue
		}
		res := out.res
		if better(res, out.name) {
			best, winner = res, out.name
		}
		if res.Status == StatusOptimal {
			// First proof wins the race: cancel the peers. Anytime
			// members return their incumbents, the rest exit quickly.
			cancel()
		}
	}
	wg.Wait()

	if best == nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCanceled, err)
		}
		if memberErr != nil {
			return nil, memberErr
		}
		return nil, fmt.Errorf("%w: no portfolio member produced a plan", ErrNoPlan)
	}

	out := *best
	out.Strategy = "auto"
	out.Winner = winner
	out.Elapsed = time.Since(start)
	if emitter != nil {
		emitter.Emit(Event{
			Kind:         KindWinner,
			Worker:       -1,
			Strategy:     winner,
			Incumbent:    out.Cost,
			Bound:        out.Bound,
			Gap:          obs.RelGap(out.Cost, out.Bound),
			HasIncumbent: true,
			Nodes:        out.Nodes,
		})
	}
	return &out, nil
}
