package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"milpjoin/joinorder"
)

// ForwardHeader marks a request as already forwarded once. A node
// receiving it serves locally no matter what the ring says, so ownership
// disagreement during a membership change degrades to one extra hop,
// never a loop.
const ForwardHeader = "X-Joinopt-Forward"

// EntryPath is the peer-to-peer cache replication endpoint.
const EntryPath = "/v1/cluster/entry"

// Entry is one replicated cache record on the wire: the persist-layer
// kind ("exact" or "donor"), the full cache key, and the serialized
// value. Val is base64 in JSON per encoding/json convention.
type Entry struct {
	Kind string `json:"kind"`
	Key  string `json:"key"`
	Val  []byte `json:"val"`
}

// Config configures a Router.
type Config struct {
	// Self is this node's peer ID; it must appear in Peers.
	Self string
	// Peers is the full static membership, including self.
	Peers []Peer
	// Vnodes is the consistent-hash points per peer (default 64).
	Vnodes int
	// Replicas is how many ring successors beyond the owner receive
	// copies of each stored entry (default 2; 0 disables replication).
	Replicas int
	// ProbeInterval is the health-probe period (default 2s; negative
	// disables probing, leaving every peer permanently healthy).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 500ms).
	ProbeTimeout time.Duration
	// QueueDepth bounds the asynchronous replication queue (default
	// 1024); when full, new entries are dropped and counted — replication
	// is best-effort by design.
	QueueDepth int
	// Client is the HTTP client used for forwards, probes, and
	// replication (default: a dedicated client with sane pooling).
	Client *http.Client
	// Logger receives probe transitions and replication failures
	// (default slog.Default).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Vnodes <= 0 {
		c.Vnodes = 64
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     30 * time.Second,
		}}
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Stats is a point-in-time snapshot of routing activity for /varz.
type Stats struct {
	// Self and Peers describe the configured membership.
	Self  string `json:"self"`
	Peers int    `json:"peers"`
	// PeersUp counts peers (excluding self) currently passing probes.
	PeersUp int `json:"peers_up"`
	// RoutedLocal counts requests the ring assigned to this node (plus
	// forwarded arrivals, which are always served locally).
	RoutedLocal int64 `json:"routed_local"`
	// Forwards counts requests proxied to their owning peer.
	Forwards int64 `json:"forwards"`
	// ForwardErrors counts forwards that failed and fell open to a local
	// solve.
	ForwardErrors int64 `json:"forward_errors"`
	// Replicated counts entry copies successfully shipped to peers.
	Replicated int64 `json:"replicated"`
	// ReplicateErrors counts failed replication posts.
	ReplicateErrors int64 `json:"replicate_errors"`
	// ReplicateDropped counts entries dropped because the replication
	// queue was full.
	ReplicateDropped int64 `json:"replicate_dropped"`
	// ProbeFails counts failed health probes.
	ProbeFails int64 `json:"probe_fails"`
}

// Router owns a node's view of the cluster: the ring, peer health, the
// forwarding client, and the asynchronous replication queue. All methods
// are safe for concurrent use.
type Router struct {
	cfg  Config
	ring *Ring
	self Peer

	health sync.Map // peer id -> *atomic.Bool

	repq     chan repItem
	done     chan struct{}
	wg       sync.WaitGroup
	enqueued atomic.Int64 // replication items accepted into the queue
	shipped  atomic.Int64 // replication items fully processed

	routedLocal      atomic.Int64
	forwards         atomic.Int64
	forwardErrors    atomic.Int64
	replicated       atomic.Int64
	replicateErrors  atomic.Int64
	replicateDropped atomic.Int64
	probeFails       atomic.Int64
}

type repItem struct {
	fp    string // routing fingerprint of the entry's query
	entry Entry
}

// New builds a Router and starts its probe and replication workers.
// Close releases them.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Peers, cfg.Vnodes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", joinorder.ErrInvalidOptions, err)
	}
	self, ok := ring.Peer(cfg.Self)
	if !ok {
		return nil, fmt.Errorf("%w: cluster: self id %q not in peer list", joinorder.ErrInvalidOptions, cfg.Self)
	}
	if cfg.Replicas < 0 || cfg.Replicas >= len(cfg.Peers) {
		// More replicas than other peers just means "everyone".
		cfg.Replicas = max(0, len(cfg.Peers)-1)
	}
	r := &Router{
		cfg:  cfg,
		ring: ring,
		self: self,
		repq: make(chan repItem, cfg.QueueDepth),
		done: make(chan struct{}),
	}
	for _, p := range cfg.Peers {
		up := &atomic.Bool{}
		up.Store(true) // optimistic start; probes demote
		r.health.Store(p.ID, up)
	}
	r.wg.Add(1)
	go r.replicateLoop()
	if cfg.ProbeInterval > 0 {
		r.wg.Add(1)
		go r.probeLoop()
	}
	return r, nil
}

// Close stops the probe and replication workers, dropping any queued
// replication entries (they are best-effort).
func (r *Router) Close() {
	close(r.done)
	r.wg.Wait()
}

// Self returns this node's peer record.
func (r *Router) Self() Peer { return r.self }

// Ring exposes the underlying ring (ownership queries in tests/tools).
func (r *Router) Ring() *Ring { return r.ring }

// Route decides where a request with the given routing fingerprint runs:
// the owning peer and true when it should be forwarded, or the local
// node and false when this node owns it — or when the owner is down
// (fail open: a reachable answer beats a correct shard).
func (r *Router) Route(fp string) (Peer, bool) {
	owner := r.ring.Owner(fp)
	if owner.ID == r.self.ID || !r.Healthy(owner.ID) {
		r.routedLocal.Add(1)
		return r.self, false
	}
	return owner, true
}

// ServedLocal records a forwarded arrival (it is pinned local).
func (r *Router) ServedLocal() { r.routedLocal.Add(1) }

// Healthy reports the latest probe verdict for the peer (self is always
// healthy).
func (r *Router) Healthy(id string) bool {
	if id == r.self.ID {
		return true
	}
	v, ok := r.health.Load(id)
	if !ok {
		return false
	}
	return v.(*atomic.Bool).Load()
}

// markHealth records a verdict, logging transitions.
func (r *Router) markHealth(id string, up bool) {
	v, ok := r.health.Load(id)
	if !ok {
		return
	}
	if v.(*atomic.Bool).Swap(up) != up {
		r.cfg.Logger.Info("cluster peer health changed", "peer", id, "up", up)
	}
}

// Forward proxies one optimize request body to the owning peer and
// returns the peer's response. The ForwardHeader pins the request local
// on the peer, preventing loops. A transport-level failure (no HTTP
// response at all) marks the peer unhealthy — the next probe can restore
// it — and returns an error so the caller can fail open; an HTTP error
// status is the answer, passed through verbatim.
func (r *Router) Forward(ctx context.Context, peer Peer, path string, header http.Header, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer.URL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for _, h := range []string{"Content-Type", "Accept", "X-Tenant"} {
		if v := header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	req.Header.Set(ForwardHeader, r.self.ID)
	r.forwards.Add(1)
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		r.forwardErrors.Add(1)
		if ctx.Err() == nil {
			// The peer, not the client, failed: demote it until a probe
			// succeeds so subsequent requests skip the dead hop.
			r.markHealth(peer.ID, false)
		}
		return nil, err
	}
	return resp, nil
}

// Replicate enqueues one freshly stored cache entry for asynchronous
// best-effort replication to the fingerprint's replica set (the owner's
// ring successors, excluding self). It never blocks: a full queue drops
// the entry and counts it. fp is the entry's routing fingerprint; kind,
// key, val are the persist-layer record.
func (r *Router) Replicate(fp, kind, key string, val []byte) {
	if r.cfg.Replicas == 0 || len(r.cfg.Peers) < 2 {
		return
	}
	select {
	case r.repq <- repItem{fp: fp, entry: Entry{Kind: kind, Key: key, Val: val}}:
		r.enqueued.Add(1)
	case <-r.done:
	default:
		r.replicateDropped.Add(1)
	}
}

// Flush blocks until the replication queue is empty and the in-flight
// item (if any) has been posted. Test and shutdown helper.
func (r *Router) Flush(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if r.shipped.Load() == r.enqueued.Load() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// replicateLoop drains the replication queue, posting each entry to
// every replica peer of its fingerprint.
func (r *Router) replicateLoop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.done:
			return
		case it := <-r.repq:
			r.shipEntry(it)
			r.shipped.Add(1)
		}
	}
}

// shipEntry posts one entry to each replica target.
func (r *Router) shipEntry(it repItem) {
	body, err := json.Marshal(it.entry)
	if err != nil {
		r.replicateErrors.Add(1)
		return
	}
	for _, p := range r.ring.Replicas(it.fp, r.cfg.Replicas) {
		if p.ID == r.self.ID || !r.Healthy(p.ID) {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.URL+EntryPath, bytes.NewReader(body))
		if err != nil {
			cancel()
			r.replicateErrors.Add(1)
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(ForwardHeader, r.self.ID)
		resp, err := r.cfg.Client.Do(req)
		if err != nil || resp.StatusCode >= 300 {
			r.replicateErrors.Add(1)
			if err == nil {
				drainClose(resp)
			}
			cancel()
			continue
		}
		drainClose(resp)
		cancel()
		r.replicated.Add(1)
	}
}

// probeLoop periodically GETs every peer's /healthz.
func (r *Router) probeLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-tick.C:
			r.probeOnce()
		}
	}
}

func (r *Router) probeOnce() {
	var wg sync.WaitGroup
	for _, p := range r.cfg.Peers {
		if p.ID == r.self.ID {
			continue
		}
		wg.Add(1)
		go func(p Peer) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.URL+"/healthz", nil)
			if err != nil {
				return
			}
			resp, err := r.cfg.Client.Do(req)
			up := err == nil && resp.StatusCode == http.StatusOK
			if err == nil {
				drainClose(resp)
			}
			if !up {
				r.probeFails.Add(1)
			}
			r.markHealth(p.ID, up)
		}(p)
	}
	wg.Wait()
}

// Stats snapshots routing counters.
func (r *Router) Stats() Stats {
	up := 0
	for _, p := range r.cfg.Peers {
		if p.ID != r.self.ID && r.Healthy(p.ID) {
			up++
		}
	}
	return Stats{
		Self:             r.self.ID,
		Peers:            len(r.cfg.Peers),
		PeersUp:          up,
		RoutedLocal:      r.routedLocal.Load(),
		Forwards:         r.forwards.Load(),
		ForwardErrors:    r.forwardErrors.Load(),
		Replicated:       r.replicated.Load(),
		ReplicateErrors:  r.replicateErrors.Load(),
		ReplicateDropped: r.replicateDropped.Load(),
		ProbeFails:       r.probeFails.Load(),
	}
}

func drainClose(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
	resp.Body.Close()
}
