// Package cluster shards a fleet of joinoptd processes over the plan
// cache's canonical query fingerprints. A consistent-hash ring assigns
// every fingerprint one owning node; requests that land elsewhere are
// forwarded to the owner, so the fleet solves each distinct query once
// and each node's cache holds its shard of the fingerprint space instead
// of a copy of everything. Hot entries are replicated to the owner's
// ring successors for restart resilience and read spreading. Membership
// is a static peer list (flag-configured); liveness is tracked by
// periodic health probes and routing fails open — a request whose owner
// is unreachable is served locally rather than erroring.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// Peer is one cluster member: a stable node ID and the HTTP base URL the
// other members reach it at.
type Peer struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// ParsePeers parses a static peer list of the form
// "id1=http://host1:port,id2=http://host2:port". IDs must be unique and
// non-empty; URLs must be absolute http(s) URLs. The result keeps the
// listed order (the ring itself is order-independent).
func ParsePeers(s string) ([]Peer, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var peers []Peer
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, raw, ok := strings.Cut(part, "=")
		if !ok || id == "" || raw == "" {
			return nil, fmt.Errorf("cluster: peer %q: want id=url", part)
		}
		u, err := url.Parse(raw)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q: %q is not an absolute http(s) URL", id, raw)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		seen[id] = true
		peers = append(peers, Peer{ID: id, URL: strings.TrimRight(raw, "/")})
	}
	return peers, nil
}

// FormatPeers is ParsePeers' inverse, for round-tripping configuration.
func FormatPeers(peers []Peer) string {
	parts := make([]string, len(peers))
	for i, p := range peers {
		parts[i] = p.ID + "=" + p.URL
	}
	return strings.Join(parts, ",")
}

// Ring is a consistent-hash ring over the peer set. Each peer projects
// vnodes points onto a 64-bit circle; a key is owned by the peer whose
// point follows the key's hash. Hashing is sha256-based and depends only
// on peer IDs and the key, so every node computes identical ownership
// from the same peer list — no coordination protocol needed.
type Ring struct {
	points []ringPoint // sorted ascending by hash
	peers  map[string]Peer
	order  []Peer // original list order, for iteration
}

type ringPoint struct {
	h  uint64
	id string
}

// hash64 maps a string to a point on the circle.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds the ring. vnodes is the number of points per peer
// (default 64 when ≤ 0); more points smooth the shard balance at the
// cost of a larger sorted index.
func NewRing(peers []Peer, vnodes int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{
		points: make([]ringPoint, 0, len(peers)*vnodes),
		peers:  make(map[string]Peer, len(peers)),
		order:  append([]Peer(nil), peers...),
	}
	for _, p := range peers {
		if p.ID == "" {
			return nil, fmt.Errorf("cluster: peer with empty id")
		}
		if _, dup := r.peers[p.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", p.ID)
		}
		r.peers[p.ID] = p
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{h: hash64(fmt.Sprintf("%s#%d", p.ID, v)), id: p.ID})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].id < r.points[j].id
	})
	return r, nil
}

// Peers returns the membership in list order.
func (r *Ring) Peers() []Peer { return append([]Peer(nil), r.order...) }

// Peer looks a member up by ID.
func (r *Ring) Peer(id string) (Peer, bool) {
	p, ok := r.peers[id]
	return p, ok
}

// Owner returns the peer owning the key.
func (r *Ring) Owner(key string) Peer {
	return r.peers[r.points[r.at(key)].id]
}

// Replicas returns the key's owner followed by up to n distinct
// successor peers walking clockwise from the owner's point — the nodes
// that hold the key's replicas.
func (r *Ring) Replicas(key string, n int) []Peer {
	out := make([]Peer, 0, n+1)
	seen := map[string]bool{}
	i := r.at(key)
	for range r.points {
		id := r.points[i].id
		if !seen[id] {
			seen[id] = true
			out = append(out, r.peers[id])
			if len(out) == n+1 {
				break
			}
		}
		i++
		if i == len(r.points) {
			i = 0
		}
	}
	return out
}

// at returns the index of the first ring point at or after the key's
// hash (wrapping).
func (r *Ring) at(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
