package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// testPeerServer is a minimal peer: it records replicated entries and
// answers /healthz according to its up flag.
type testPeerServer struct {
	mu      sync.Mutex
	entries []Entry
	up      bool
	srv     *httptest.Server
}

func newTestPeer(t *testing.T) *testPeerServer {
	t.Helper()
	p := &testPeerServer{up: true}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		up := p.up
		p.mu.Unlock()
		if !up {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST "+EntryPath, func(w http.ResponseWriter, r *http.Request) {
		var e Entry
		if err := json.NewDecoder(r.Body).Decode(&e); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p.mu.Lock()
		p.entries = append(p.entries, e)
		p.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	p.srv = httptest.NewServer(mux)
	t.Cleanup(p.srv.Close)
	return p
}

func (p *testPeerServer) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

func TestRouterRouteAndFailOpen(t *testing.T) {
	peers := threePeers()
	r, err := New(Config{Self: "n0", Peers: peers, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	sawRemote := false
	for i := 0; i < 200; i++ {
		fp := fmt.Sprintf("fp-%d", i)
		owner, remote := r.Route(fp)
		want := r.Ring().Owner(fp)
		if remote {
			sawRemote = true
			if owner.ID != want.ID || owner.ID == "n0" {
				t.Fatalf("fp %q routed to %s, ring owner %s", fp, owner.ID, want.ID)
			}
		} else if owner.ID != "n0" {
			t.Fatalf("local route returned %s", owner.ID)
		}
	}
	if !sawRemote {
		t.Fatal("no fingerprint routed remotely across 200 keys")
	}

	// A peer marked down routes locally (fail open).
	r.markHealth("n1", false)
	r.markHealth("n2", false)
	for i := 0; i < 200; i++ {
		if _, remote := r.Route(fmt.Sprintf("fp-%d", i)); remote {
			t.Fatal("routed to a peer that is marked down")
		}
	}
	if s := r.Stats(); s.PeersUp != 0 || s.RoutedLocal == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRouterForwardSetsLoopHeaderAndDemotesDeadPeer(t *testing.T) {
	var gotHeader string
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader = r.Header.Get(ForwardHeader)
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, `{"ok":true}`)
	}))
	defer backend.Close()

	peers := []Peer{{ID: "n0", URL: "http://127.0.0.1:1"}, {ID: "n1", URL: backend.URL}}
	r, err := New(Config{Self: "n0", Peers: peers, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	resp, err := r.Forward(context.Background(), Peer{ID: "n1", URL: backend.URL}, "/v1/optimize", http.Header{}, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp)
	if gotHeader != "n0" {
		t.Fatalf("forward header = %q, want sender id", gotHeader)
	}

	// Forwarding to an unreachable peer errors and demotes it.
	dead := Peer{ID: "n1", URL: "http://127.0.0.1:1"}
	if _, err := r.Forward(context.Background(), dead, "/v1/optimize", http.Header{}, nil); err == nil {
		t.Fatal("forward to dead peer succeeded")
	}
	if r.Healthy("n1") {
		t.Fatal("dead peer still healthy after failed forward")
	}
	if s := r.Stats(); s.Forwards != 2 || s.ForwardErrors != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRouterReplicatesToSuccessorsOnly(t *testing.T) {
	p1, p2 := newTestPeer(t), newTestPeer(t)
	peers := []Peer{
		{ID: "n0", URL: "http://127.0.0.1:1"}, // self; never posted to
		{ID: "n1", URL: p1.srv.URL},
		{ID: "n2", URL: p2.srv.URL},
	}
	r, err := New(Config{Self: "n0", Peers: peers, Replicas: 2, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const n = 50
	for i := 0; i < n; i++ {
		fp := fmt.Sprintf("fp-%d", i)
		r.Replicate(fp, "exact", "e|k|"+fp, []byte(`{"x":1}`))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// Replicas=2 on a 3-node ring means every entry reaches both other
	// nodes (owner + 2 successors covers the full membership; self is
	// skipped).
	if p1.count() != n || p2.count() != n {
		t.Fatalf("replica counts = %d, %d; want %d each", p1.count(), p2.count(), n)
	}
	if s := r.Stats(); s.Replicated != 2*n || s.ReplicateErrors != 0 {
		t.Fatalf("stats = %+v", s)
	}
	// Entries round-trip through the wire format.
	p1.mu.Lock()
	e := p1.entries[0]
	p1.mu.Unlock()
	if e.Kind != "exact" || string(e.Val) != `{"x":1}` {
		t.Fatalf("entry = %+v", e)
	}
}

func TestRouterProbeRecoversPeer(t *testing.T) {
	peer := newTestPeer(t)
	peer.mu.Lock()
	peer.up = false
	peer.mu.Unlock()
	r, err := New(Config{
		Self:          "n0",
		Peers:         []Peer{{ID: "n0", URL: "http://127.0.0.1:1"}, {ID: "n1", URL: peer.srv.URL}},
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	deadline := time.Now().Add(3 * time.Second)
	for r.Healthy("n1") && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if r.Healthy("n1") {
		t.Fatal("failing peer never demoted by probes")
	}
	peer.mu.Lock()
	peer.up = true
	peer.mu.Unlock()
	for !r.Healthy("n1") && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !r.Healthy("n1") {
		t.Fatal("recovered peer never promoted by probes")
	}
	if r.Stats().ProbeFails == 0 {
		t.Fatal("probe failures not counted")
	}
}

func TestRouterConfigValidation(t *testing.T) {
	if _, err := New(Config{Self: "nope", Peers: threePeers()}); err == nil {
		t.Error("self outside peer list accepted")
	}
	if _, err := New(Config{Self: "n0", Peers: nil}); err == nil {
		t.Error("empty peer list accepted")
	}
}
