package cluster

import (
	"fmt"
	"testing"
)

func threePeers() []Peer {
	return []Peer{
		{ID: "n0", URL: "http://127.0.0.1:9100"},
		{ID: "n1", URL: "http://127.0.0.1:9101"},
		{ID: "n2", URL: "http://127.0.0.1:9102"},
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("n0=http://a:1, n1=http://b:2 ,n2=https://c:3/")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 3 || peers[0].ID != "n0" || peers[2].URL != "https://c:3" {
		t.Fatalf("peers = %+v", peers)
	}
	if got, _ := ParsePeers(""); got != nil {
		t.Fatalf("empty list parsed to %+v", got)
	}
	for _, bad := range []string{
		"http://a:1",          // no id
		"n0=",                 // no url
		"n0=ftp://a:1",        // wrong scheme
		"n0=http://a,n0=http://b", // dup id
		"=http://a:1",         // empty id
	} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
	rt, err := ParsePeers(FormatPeers(peers))
	if err != nil || len(rt) != 3 || rt[1] != peers[1] {
		t.Fatalf("round trip = %+v, %v", rt, err)
	}
}

func TestRingDeterministicAndComplete(t *testing.T) {
	r1, err := NewRing(threePeers(), 64)
	if err != nil {
		t.Fatal(err)
	}
	// A peer list in any order yields identical ownership.
	shuffled := []Peer{threePeers()[2], threePeers()[0], threePeers()[1]}
	r2, err := NewRing(shuffled, 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("fp-%d", i)
		o1, o2 := r1.Owner(key), r2.Owner(key)
		if o1.ID != o2.ID {
			t.Fatalf("key %q: ownership differs across list orders (%s vs %s)", key, o1.ID, o2.ID)
		}
		counts[o1.ID]++
	}
	// With 64 vnodes the shards should be roughly balanced: every node
	// owns a substantial share.
	for id, n := range counts {
		if n < 3000/10 {
			t.Errorf("peer %s owns only %d/3000 keys — ring badly unbalanced: %v", id, n, counts)
		}
	}
}

func TestRingReplicas(t *testing.T) {
	r, err := NewRing(threePeers(), 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("fp-%d", i)
		reps := r.Replicas(key, 2)
		if len(reps) != 3 {
			t.Fatalf("key %q: %d replicas, want 3 (owner + 2)", key, len(reps))
		}
		if reps[0].ID != r.Owner(key).ID {
			t.Fatalf("key %q: first replica %s is not the owner %s", key, reps[0].ID, r.Owner(key).ID)
		}
		seen := map[string]bool{}
		for _, p := range reps {
			if seen[p.ID] {
				t.Fatalf("key %q: duplicate replica %s", key, p.ID)
			}
			seen[p.ID] = true
		}
	}
	// Asking for more successors than exist returns every peer once.
	if got := r.Replicas("x", 99); len(got) != 3 {
		t.Fatalf("oversized replica ask returned %d peers", len(got))
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 64); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]Peer{{ID: "", URL: "http://a"}}, 4); err == nil {
		t.Error("empty peer id accepted")
	}
	if _, err := NewRing([]Peer{{ID: "a"}, {ID: "a"}}, 4); err == nil {
		t.Error("duplicate peer id accepted")
	}
}
