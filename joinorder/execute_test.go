package joinorder

import (
	"context"
	"sync"
	"testing"

	"milpjoin/internal/workload"
)

func execTestQuery(shape workload.GraphShape, n int, seed int64) *Query {
	return workload.Generate(shape, n, seed, workload.Config{
		MinLogCard: 1, MaxLogCard: 2,
		MinSel: 0.02, MaxSel: 0.3,
	})
}

// corruptedStats returns a query pair: the ground truth the data follows,
// and the optimizer's estimate with the first predicate's selectivity
// underestimated by four orders of magnitude — the classic misestimate
// that makes a plan start with what looks like a tiny join and is not.
func corruptedStats() (truth, est *Query) {
	truth = &Query{
		Tables: []Table{{Card: 200}, {Card: 200}, {Card: 50}, {Card: 50}, {Card: 50}},
		Predicates: []Predicate{
			{Tables: []int{0, 1}, Sel: 0.5},
			{Tables: []int{1, 2}, Sel: 0.02},
			{Tables: []int{2, 3}, Sel: 0.002},
			{Tables: []int{3, 4}, Sel: 0.002},
		},
	}
	est = &Query{
		Tables:     append([]Table(nil), truth.Tables...),
		Predicates: append([]Predicate(nil), truth.Predicates...),
	}
	est.Predicates[0].Sel = 1e-5
	return truth, est
}

func TestOptimizeExecutedBasic(t *testing.T) {
	q := execTestQuery(workload.Star, 5, 3)
	var want uint64
	for i, strat := range []string{"dp-leftdeep", "dp-bushy", "greedy"} {
		ex, err := OptimizeExecuted(context.Background(), q, Options{Strategy: strat}, ExecOptions{DataSeed: 11})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if len(ex.Joins) != 4 {
			t.Errorf("%s: %d join observations, want 4", strat, len(ex.Joins))
		}
		root := ex.Joins[len(ex.Joins)-1]
		if int(root.Measured) != ex.ResultRows {
			t.Errorf("%s: root measured %g, result rows %d", strat, root.Measured, ex.ResultRows)
		}
		if ex.MaxQError < 1 {
			t.Errorf("%s: max q-error %g < 1", strat, ex.MaxQError)
		}
		if ex.EstimatedCout <= 0 {
			t.Errorf("%s: estimated C_out %g", strat, ex.EstimatedCout)
		}
		if ex.Result == nil || ex.Result.Tree == nil {
			t.Fatalf("%s: no optimization result attached", strat)
		}
		if i == 0 {
			want = ex.Fingerprint
		} else if ex.Fingerprint != want {
			t.Errorf("%s: result fingerprint differs across strategies", strat)
		}
	}
}

// TestOptimizeExecutedFeedbackImprovesCost is the feedback loop's
// acceptance test: optimizing against corrupted statistics and executing
// against the truth, mid-query re-optimization must demonstrably lower
// the executed cost relative to running the misoptimized plan through.
func TestOptimizeExecutedFeedbackImprovesCost(t *testing.T) {
	truth, est := corruptedStats()
	opts := Options{Strategy: "dp-bushy"}

	noFB, err := OptimizeExecuted(context.Background(), est, opts, ExecOptions{
		DataQuery: truth, DataSeed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	fb, err := OptimizeExecuted(context.Background(), est, opts, ExecOptions{
		DataQuery: truth, DataSeed: 17,
		Feedback: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	if noFB.MaxQError < 100 {
		t.Fatalf("corrupted stats produced max q-error %g, expected ≫ 100", noFB.MaxQError)
	}
	if fb.Reoptimizations < 1 {
		t.Fatalf("no mid-query re-optimization despite q-error %g", fb.MaxQError)
	}
	if fb.ExecutedCout >= noFB.ExecutedCout*0.8 {
		t.Errorf("feedback executed C_out %g, without feedback %g — re-optimization did not pay off",
			fb.ExecutedCout, noFB.ExecutedCout)
	}
	if fb.Fingerprint != noFB.Fingerprint {
		t.Error("feedback changed the query result")
	}
	if fb.CorrectedQuery == nil {
		t.Fatal("feedback run returned no corrected query")
	}
	if sel := fb.CorrectedQuery.Predicates[0].Sel; sel < 0.2 || sel > 1 {
		t.Errorf("corrected selectivity %g, ground truth 0.5", sel)
	}
	if noFB.CorrectedQuery != nil {
		t.Error("non-feedback run carries a corrected query")
	}
}

// TestOptimizeExecutedConcurrent exercises concurrent optimize-execute-
// reoptimize cycles; run under -race this checks the feedback path shares
// no mutable state across executions.
func TestOptimizeExecutedConcurrent(t *testing.T) {
	truth, est := corruptedStats()
	const workers = 8
	fps := make([]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ex, err := OptimizeExecuted(context.Background(), est, Options{Strategy: "greedy"}, ExecOptions{
				DataQuery: truth, DataSeed: 23,
				Feedback: true,
			})
			if err != nil {
				t.Error(err)
				return
			}
			fps[w] = ex.Fingerprint
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for w := 1; w < workers; w++ {
		if fps[w] != fps[0] {
			t.Fatalf("worker %d produced a different result", w)
		}
	}
}

func TestOptimizeExecutedValidation(t *testing.T) {
	q := execTestQuery(workload.Chain, 4, 5)
	if _, err := OptimizeExecuted(context.Background(), nil, Options{}, ExecOptions{}); err == nil {
		t.Error("nil query accepted")
	}
	// A data query with different predicate structure must be rejected.
	bad := execTestQuery(workload.Star, 4, 5)
	if _, err := OptimizeExecuted(context.Background(), q, Options{Strategy: "greedy"}, ExecOptions{DataQuery: bad}); err == nil {
		t.Error("structurally different data query accepted")
	}
	if _, err := OptimizeExecuted(context.Background(), q, Options{Strategy: "no-such"}, ExecOptions{}); err == nil {
		t.Error("unknown strategy accepted")
	}
}
