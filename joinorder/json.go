package joinorder

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"
)

// MarshalJSON renders the status as its string name.
func (s Status) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses the string form produced by MarshalJSON.
func (s *Status) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for _, cand := range []Status{StatusOptimal, StatusFeasible, StatusTimeLimit, StatusCanceled} {
		if cand.String() == name {
			*s = cand
			return nil
		}
	}
	return fmt.Errorf("joinorder: unknown status %q", name)
}

// planJSON is the wire form of a left-deep plan.
type planJSON struct {
	Order     []int    `json:"order"`
	Text      string   `json:"text"`
	Operators []string `json:"operators,omitempty"`
}

// resultJSON is the wire form of a Result; non-finite numbers (an infinite
// gap, a -Inf heuristic bound) become null so the document stays valid
// JSON for every consumer.
type resultJSON struct {
	Strategy   string    `json:"strategy"`
	Status     Status    `json:"status"`
	Plan       *planJSON `json:"plan,omitempty"`
	Tree       string    `json:"tree,omitempty"`
	Cost       *float64  `json:"cost"`
	Objective  *float64  `json:"objective"`
	Bound      *float64  `json:"bound"`
	Gap        *float64  `json:"gap"`
	Nodes      int       `json:"nodes,omitempty"`
	ElapsedSec float64   `json:"elapsed_sec"`
	Stats      *Stats    `json:"stats,omitempty"`
	MIPStart   string    `json:"mip_start,omitempty"`
	Winner     string    `json:"winner,omitempty"`
}

// jsonFinite maps non-finite values to nil for JSON.
func jsonFinite(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

// MarshalJSON emits one machine-readable document per result: the plan
// (join order, rendered text, per-join operators), the exact cost, the
// strategy objective with its proven bound and gap, and — for the MILP
// strategy — the full per-phase Stats.
func (r *Result) MarshalJSON() ([]byte, error) {
	out := resultJSON{
		Strategy:   r.Strategy,
		Status:     r.Status,
		Cost:       jsonFinite(r.Cost),
		Objective:  jsonFinite(r.Objective),
		Bound:      jsonFinite(r.Bound),
		Gap:        jsonFinite(r.Gap),
		Nodes:      r.Nodes,
		ElapsedSec: r.Elapsed.Seconds(),
		Stats:      r.Stats,
		MIPStart:   r.MIPStart,
		Winner:     r.Winner,
	}
	if r.Plan != nil {
		pj := &planJSON{Order: r.Plan.Order, Text: r.Plan.String()}
		for _, op := range r.Plan.Operators {
			pj.Operators = append(pj.Operators, op.String())
		}
		out.Plan = pj
	}
	if r.Tree != nil {
		out.Tree = r.Tree.String()
	}
	return json.Marshal(out)
}

// jsonOrInf is the inverse of jsonFinite: null restores the given
// non-finite sentinel.
func jsonOrInf(v *float64, inf float64) float64 {
	if v == nil {
		return inf
	}
	return *v
}

// UnmarshalJSON parses the document produced by MarshalJSON, so clients of
// the serving daemon can decode responses back into a Result. Null numeric
// fields restore their non-finite sentinels (no bound → -Inf, no gap →
// +Inf). The rendered Tree string is presentation-only and is not parsed
// back: Tree stays nil; Plan (when present) round-trips in full.
func (r *Result) UnmarshalJSON(data []byte) error {
	var in resultJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*r = Result{
		Strategy:  in.Strategy,
		Status:    in.Status,
		Cost:      jsonOrInf(in.Cost, math.Inf(1)),
		Objective: jsonOrInf(in.Objective, math.Inf(1)),
		Bound:     jsonOrInf(in.Bound, math.Inf(-1)),
		Gap:       jsonOrInf(in.Gap, math.Inf(1)),
		Nodes:     in.Nodes,
		Elapsed:   time.Duration(in.ElapsedSec * float64(time.Second)),
		Stats:     in.Stats,
		MIPStart:  in.MIPStart,
		Winner:    in.Winner,
	}
	if in.Plan != nil {
		p := &Plan{Order: in.Plan.Order}
		for _, name := range in.Plan.Operators {
			op, err := parseOperator(name)
			if err != nil {
				return err
			}
			p.Operators = append(p.Operators, op)
		}
		r.Plan = p
	}
	return nil
}

// parseOperator maps an Operator's String() form back to the operator.
func parseOperator(name string) (Operator, error) {
	for _, op := range []Operator{HashJoin, SortMergeJoin, BlockNestedLoopJoin} {
		if op.String() == name {
			return op, nil
		}
	}
	return 0, fmt.Errorf("joinorder: unknown join operator %q", name)
}

// String renders the result as a short human-readable report.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s", r.Strategy, r.Status)
	if r.Winner != "" {
		fmt.Fprintf(&sb, " winner=%s", r.Winner)
	}
	switch {
	case r.Plan != nil:
		fmt.Fprintf(&sb, " plan=%s", r.Plan)
	case r.Tree != nil:
		fmt.Fprintf(&sb, " tree=%s", r.Tree)
	}
	fmt.Fprintf(&sb, " cost=%.6g", r.Cost)
	if !math.IsInf(r.Bound, 0) {
		fmt.Fprintf(&sb, " bound=%.6g gap=%.4f", r.Bound, r.Gap)
	}
	if r.Nodes > 0 {
		fmt.Fprintf(&sb, " nodes=%d", r.Nodes)
	}
	fmt.Fprintf(&sb, " elapsed=%s", r.Elapsed.Truncate(time.Microsecond))
	return sb.String()
}
