package main

import "testing"

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("10, 20,30")
	if err != nil || len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Fatalf("parseSizes = %v, %v", got, err)
	}
	if out, err := parseSizes(""); err != nil || out != nil {
		t.Errorf("empty = %v, %v", out, err)
	}
	if _, err := parseSizes("10,abc"); err == nil {
		t.Error("bad size accepted")
	}
}
