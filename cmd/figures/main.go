// Command figures regenerates the data behind the paper's evaluation
// figures at a configurable scale.
//
//	figures -figure 1                          # model-size census (Figure 1)
//	figures -figure 2 -sizes 10,15,20 -timeout 10s -queries 5
//	figures -figure 2 -full                    # the paper's full grid (hours)
//	figures -figure 1 -csv                     # machine-readable output
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"milpjoin/internal/experiments"
)

func main() {
	var (
		figure  = flag.Int("figure", 1, "figure to regenerate: 1, 2, or 3 (extra: heuristic comparison)")
		sizes   = flag.String("sizes", "", "comma-separated table counts (default depends on figure)")
		queries = flag.Int("queries", 0, "random queries per configuration (default 20 for -figure 1, 5 for -figure 2)")
		timeout = flag.Duration("timeout", 10*time.Second, "per-query optimization budget for figure 2")
		samples = flag.Int("samples", 10, "sample points within the timeout for figure 2")
		threads = flag.Int("threads", 2, "solver threads per optimization run")
		seed    = flag.Int64("seed", 1, "workload seed")
		full    = flag.Bool("full", false, "use the paper's full configuration (sizes 10-60, 20 queries, 60s)")
		csv     = flag.Bool("csv", false, "emit CSV instead of a text table")
	)
	flag.Parse()

	sz, err := parseSizes(*sizes)
	if err != nil {
		fatal(err)
	}

	// Ctrl-C cancels the run; in-flight optimizations unwind promptly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	switch *figure {
	case 3: // extra experiment: MILP vs randomized algorithms
		rows, err := experiments.HeuristicComparison(ctx, experiments.HeuristicComparisonConfig{
			Tables:  firstOr(sz, 12),
			Queries: *queries,
			Budget:  *timeout,
			Threads: *threads,
			Seed:    *seed,
		})
		if err != nil {
			fatal(err)
		}
		experiments.RenderHeuristicComparison(os.Stdout, rows)
	case 1:
		cfg := experiments.Figure1Config{Sizes: sz, QueriesPerSize: *queries, Seed: *seed}
		if *full {
			cfg.Sizes = nil
			cfg.QueriesPerSize = 20
		}
		rows, err := experiments.Figure1(cfg)
		if err != nil {
			fatal(err)
		}
		if *csv {
			experiments.RenderFigure1CSV(os.Stdout, rows)
		} else {
			experiments.RenderFigure1(os.Stdout, rows)
		}
	case 2:
		cfg := experiments.Figure2Config{
			Sizes:          sz,
			QueriesPerCell: *queries,
			Timeout:        *timeout,
			Samples:        *samples,
			Threads:        *threads,
			Seed:           *seed,
		}
		if cfg.QueriesPerCell == 0 {
			cfg.QueriesPerCell = 5
		}
		if cfg.Sizes == nil && !*full {
			cfg.Sizes = []int{10, 15, 20}
		}
		if *full {
			cfg = experiments.Figure2Config{Seed: *seed, Threads: *threads}
		}
		eff := cfg.WithDefaults()
		perCell := time.Duration(eff.QueriesPerCell*(len(eff.Precisions)+1)) * eff.Timeout
		fmt.Fprintf(os.Stderr, "figure 2: %d cells, worst-case ~%v per cell\n",
			len(eff.Shapes)*len(eff.Sizes), perCell)
		cells, err := experiments.Figure2(ctx, cfg, func(cell experiments.Figure2Cell) {
			fmt.Fprintf(os.Stderr, "  done: %s, %d tables\n", cell.Shape, cell.Tables)
		})
		if err != nil {
			fatal(err)
		}
		if *csv {
			experiments.RenderFigure2CSV(os.Stdout, cells)
		} else {
			experiments.RenderFigure2(os.Stdout, cells)
		}
	default:
		fatal(fmt.Errorf("unknown figure %d (1 and 2 are the paper's; 3 is the extra heuristic comparison)", *figure))
	}
}

func firstOr(xs []int, def int) int {
	if len(xs) > 0 {
		return xs[0]
	}
	return def
}

func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad size %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
