package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"milpjoin/internal/workload"
	"milpjoin/joinorder"
	"milpjoin/joinorder/cache"
)

func TestParseShape(t *testing.T) {
	for name, want := range map[string]workload.GraphShape{
		"chain": workload.Chain, "cycle": workload.Cycle,
		"star": workload.Star, "clique": workload.Clique,
	} {
		got, err := parseShape(name)
		if err != nil || got != want {
			t.Errorf("parseShape(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseShape("triangle"); err == nil {
		t.Error("unknown shape accepted")
	}
}

func TestBuildOptions(t *testing.T) {
	opts, err := buildOptions("high", "cout")
	if err != nil || opts.Metric != joinorder.Cout {
		t.Fatalf("cout: %+v %v", opts, err)
	}
	opts, err = buildOptions("low", "choose")
	if err != nil || !opts.ChooseOperators {
		t.Fatalf("choose: %+v %v", opts, err)
	}
	if _, err := buildOptions("ultra", "hash"); err == nil {
		t.Error("bad precision accepted")
	}
	if _, err := buildOptions("high", "quantum"); err == nil {
		t.Error("bad metric accepted")
	}
}

// TestLoadQueryExecute checks the generator swaps to the execution-
// friendly workload config when -execute is set: table cardinalities
// must stay small enough to actually run.
func TestLoadQueryExecute(t *testing.T) {
	q, err := loadQuery("", "", "", "chain", 6, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, tab := range q.Tables {
		if tab.Card > 400 {
			t.Errorf("table %d has %g rows — too large for the executable workload config", i, tab.Card)
		}
	}
}

func TestLoadQueryGenerator(t *testing.T) {
	q, err := loadQuery("", "", "", "star", 6, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumTables() != 6 || len(q.Predicates) != 5 {
		t.Errorf("generated %d tables, %d predicates", q.NumTables(), len(q.Predicates))
	}
}

func TestLoadQueryJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.json")
	content := `{
		"tables": [{"name": "A", "card": 10}, {"name": "B", "card": 20}],
		"predicates": [{"name": "p", "tables": [0, 1], "sel": 0.5}]
	}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	q, err := loadQuery(path, "", "", "", 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumTables() != 2 || q.Tables[0].Name != "A" || q.Predicates[0].Sel != 0.5 {
		t.Errorf("parsed query = %+v", q)
	}
	// Invalid JSON and invalid query both error.
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := loadQuery(bad, "", "", "", 0, 0, false); err == nil {
		t.Error("bad JSON accepted")
	}
	invalid := filepath.Join(dir, "invalid.json")
	os.WriteFile(invalid, []byte(`{"tables": [{"name": "A", "card": 10}]}`), 0o644)
	if _, err := loadQuery(invalid, "", "", "", 0, 0, false); err == nil {
		t.Error("single-table query accepted")
	}
}

func TestLoadQuerySQL(t *testing.T) {
	q, err := loadQuery("", "SELECT * FROM orders o, customers c WHERE o.cust_id = c.id",
		"../../testdata/catalog.json", "", 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumTables() != 2 || len(q.Predicates) != 1 {
		t.Errorf("sql query = %+v", q)
	}
	if _, err := loadQuery("", "SELECT * FROM a, b WHERE a.x = b.y", "", "", 0, 0, false); err == nil {
		t.Error("-sql without -catalog accepted")
	}
}

func TestRunExecuted(t *testing.T) {
	// A fixed small query keeps the executed intermediates tiny; the
	// generator path of -execute is covered by TestLoadQueryExecute.
	q := &joinorder.Query{
		Tables: []joinorder.Table{{Card: 100}, {Card: 80}, {Card: 60}, {Card: 40}, {Card: 20}},
		Predicates: []joinorder.Predicate{
			{Tables: []int{0, 1}, Sel: 0.05},
			{Tables: []int{1, 2}, Sel: 0.04},
			{Tables: []int{2, 3}, Sel: 0.05},
			{Tables: []int{3, 4}, Sel: 0.1},
		},
	}
	opts := joinorder.Options{Strategy: "dp-bushy", TimeLimit: 10 * time.Second}

	var text bytes.Buffer
	if err := runExecuted(context.Background(), &text, nil, q, opts, joinorder.ExecOptions{DataSeed: 9}, false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"executed C_out", "max q-error", "result rows"} {
		if !bytes.Contains(text.Bytes(), []byte(want)) {
			t.Errorf("text output missing %q:\n%s", want, text.String())
		}
	}

	var jsonBuf bytes.Buffer
	eo := joinorder.ExecOptions{DataSeed: 9, Feedback: true, QErrorThreshold: 2}
	if err := runExecuted(context.Background(), &jsonBuf, nil, q, opts, eo, true); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Result struct {
			Status string `json:"status"`
		} `json:"result"`
		Execution struct {
			ExecutedCout float64 `json:"executed_cout"`
			MaxQError    float64 `json:"max_qerror"`
			Joins        []struct {
				Tables []int `json:"tables"`
			} `json:"joins"`
		} `json:"execution"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &doc); err != nil {
		t.Fatalf("-execute -json output does not parse: %v\n%s", err, jsonBuf.String())
	}
	if doc.Result.Status == "" {
		t.Error("execution document missing result status")
	}
	if len(doc.Execution.Joins) != 4 {
		t.Errorf("execution document has %d joins, want 4", len(doc.Execution.Joins))
	}
	if doc.Execution.ExecutedCout <= 0 || doc.Execution.MaxQError < 1 {
		t.Errorf("execution document = %+v", doc.Execution)
	}

	// -cache -execute composes: the optimize leg runs through the plan
	// cache, so the second execution of the same query hits.
	co, err := cache.New(cache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	opts.Strategy = "milp"
	for i := 0; i < 2; i++ {
		var buf bytes.Buffer
		if err := runExecuted(context.Background(), &buf, co, q, opts, joinorder.ExecOptions{DataSeed: 9}, false); err != nil {
			t.Fatal(err)
		}
	}
	co.Wait()
	if s := co.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("cached -execute: hits=%d misses=%d, want 1/1", s.Hits, s.Misses)
	}
}

func TestPrintJSONDocument(t *testing.T) {
	q, err := loadQuery("", "", "", "chain", 6, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	res, err := joinorder.Optimize(context.Background(), q, joinorder.Options{
		Strategy:  "milp",
		TimeLimit: 30 * time.Second,
		OnEvent:   func(ev joinorder.Event) { counts[ev.Kind.String()]++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := printJSON(&buf, q, res, "milp", "hash", "medium", counts, nil, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Query struct {
			Tables int `json:"tables"`
		} `json:"query"`
		Result struct {
			Status string `json:"status"`
			Stats  *struct {
				SimplexIters int     `json:"simplex_iters"`
				PresolveSec  float64 `json:"presolve_sec"`
				SearchSec    float64 `json:"search_sec"`
			} `json:"stats"`
		} `json:"result"`
		EventCounts map[string]int `json:"event_counts"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, buf.String())
	}
	if doc.Query.Tables != 6 || doc.Result.Status != "optimal" {
		t.Errorf("query/status = %+v", doc)
	}
	if doc.Result.Stats == nil || doc.Result.Stats.SimplexIters <= 0 || doc.Result.Stats.SearchSec <= 0 {
		t.Errorf("stats missing from document: %+v", doc.Result.Stats)
	}
	if len(doc.EventCounts) < 3 {
		t.Errorf("want >= 3 distinct event kinds, got %v", doc.EventCounts)
	}
}

// TestPrintJSONCacheDocument checks the -cache -json contract: one
// self-contained document carrying the cache counters and the per-entry
// table, with background refines already settled.
func TestPrintJSONCacheDocument(t *testing.T) {
	q, err := loadQuery("", "", "", "chain", 6, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	co, err := cache.New(cache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	opts := joinorder.Options{Strategy: "dp-leftdeep", TimeLimit: 10 * time.Second}
	var res *joinorder.Result
	for i := 0; i < 3; i++ { // first run solves, the rest hit
		if res, err = co.Optimize(context.Background(), q, opts); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := printJSON(&buf, q, res, "dp-leftdeep", "hash", "medium", nil, nil, co); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Cache *struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
		Entries []struct {
			Key    string `json:"key"`
			Hits   int64  `json:"hits"`
			Tables int    `json:"tables"`
		} `json:"cache_entries"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, buf.String())
	}
	if doc.Cache == nil || doc.Cache.Hits != 2 || doc.Cache.Misses != 1 {
		t.Errorf("cache counters = %+v, want hits=2 misses=1", doc.Cache)
	}
	if len(doc.Entries) != 1 || doc.Entries[0].Key == "" || doc.Entries[0].Hits != 2 || doc.Entries[0].Tables != 6 {
		t.Errorf("cache_entries = %+v", doc.Entries)
	}
}
