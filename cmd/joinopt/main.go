// Command joinopt optimizes a join query through the public joinorder API
// and prints the resulting plan, with the anytime quality trace when the
// strategy streams one. Ctrl-C cancels the optimization context: the MILP
// strategy then returns the best plan found so far with its proven bound —
// the paper's anytime property, live.
//
// Queries come either from a JSON file (-query), SQL text (-sql with
// -catalog), or from the built-in Steinbrunn-style generator
// (-tables/-shape/-seed). Examples:
//
//	joinopt -tables 20 -shape star -precision medium -timeout 10s
//	joinopt -strategy dp-leftdeep -tables 14 -shape chain
//	joinopt -strategy hybrid -tables 120 -shape snowflake -timeout 5s
//	joinopt -query q.json -metric cout -lp model.lp
//
// Observability: -stats prints the per-phase solver statistics, -trace-events
// streams every structured solver event, -json emits one machine-readable
// document (plan, cost, bound, stats, event counts), and -metrics serves
// expvar counters plus net/http/pprof profiles over HTTP while optimizing:
//
//	joinopt -tables 20 -shape chain -stats -json
//	joinopt -tables 20 -shape star -trace-events
//	joinopt -tables 24 -shape clique -metrics localhost:6060 -timeout 60s
//
// Serving: -cache routes optimization through the fingerprint-keyed plan
// cache and -repeat re-optimizes the same query several times, so the
// first run solves and the rest hit. With -stats the cache counters and
// the per-entry table are printed after the plan:
//
//	joinopt -tables 12 -shape chain -cache -repeat 5 -stats
//
// Execution: -execute synthesizes data matching the query's statistics,
// runs the optimized plan through the streaming executor, and prints the
// estimated next to the executed cost with per-join q-errors. -feedback
// additionally re-optimizes the remaining joins mid-query whenever a
// measured cardinality misses its estimate by more than -qerror:
//
//	joinopt -tables 8 -shape chain -strategy milp -execute
//	joinopt -tables 8 -shape star -execute -feedback -qerror 2 -exec-seed 7
//
// -cache composes with -execute: the optimize leg is served through the
// plan cache, and an execution whose measured cardinalities diverge from
// the estimates feeds the corrected statistics back — the stale entry is
// invalidated and refreshed in the background, so the next -repeat run
// (or daemon request) gets a plan fit to the observed data:
//
//	joinopt -tables 8 -shape chain -cache -execute -feedback -repeat 3 -stats
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"milpjoin/internal/core"
	"milpjoin/internal/qopt"
	"milpjoin/internal/sql"
	"milpjoin/internal/workload"
	"milpjoin/joinorder"
	"milpjoin/joinorder/cache"
)

func main() {
	var (
		queryFile = flag.String("query", "", "JSON query file (overrides the generator flags)")
		sqlText   = flag.String("sql", "", "SQL select-project-join query (requires -catalog)")
		catFile   = flag.String("catalog", "", "JSON catalog with table statistics for -sql")
		tables    = flag.Int("tables", 10, "number of tables for the generator")
		shapeName = flag.String("shape", "star", "join graph shape: chain, cycle, star, clique, snowflake, transitive")
		seed      = flag.Int64("seed", 1, "generator seed (also drives randomized strategies)")
		strat     = flag.String("strategy", joinorder.DefaultStrategy,
			"optimization strategy: "+strings.Join(joinorder.Strategies(), ", "))
		portfolio = flag.String("portfolio", "",
			"comma-separated members for -strategy auto (default: the built-in portfolio)")
		precision = flag.String("precision", "medium", "cardinality approximation: high, medium, low")
		metric    = flag.String("metric", "hash", "cost metric: cout, hash, smj, bnl, choose")
		timeout   = flag.Duration("timeout", 30*time.Second, "optimization time budget")
		gap       = flag.Float64("gap", 1e-6, "relative MIP gap at which to stop")
		threads   = flag.Int("threads", 4, "parallel branch-and-bound workers")
		lpFile    = flag.String("lp", "", "also write the MILP in LP format to this file")
		quiet     = flag.Bool("quiet", false, "suppress the anytime trace")
		stats     = flag.Bool("stats", false, "print per-phase solver statistics after the plan")
		jsonOut   = flag.Bool("json", false, "emit one machine-readable JSON document instead of text")
		traceEv   = flag.Bool("trace-events", false, "print every solver event (with -json: embed the events in the document)")
		metrics   = flag.String("metrics", "", "serve expvar counters and pprof profiles on this HTTP address (e.g. localhost:6060)")
		cacheOn   = flag.Bool("cache", false, "route optimization through the fingerprint-keyed plan cache")
		repeat    = flag.Int("repeat", 1, "optimize the query this many times (with -cache, runs after the first hit)")
		partCap   = flag.Int("partition-cap", 0, "hybrid strategy: max tables per partition (0: the default 15)")
		seamFrac  = flag.Float64("seam-frac", 0, "hybrid strategy: budget fraction reserved for seam re-optimization (0: the default 0.25)")
		execute   = flag.Bool("execute", false, "synthesize matching data and run the optimized plan through the streaming executor")
		execSeed  = flag.Int64("exec-seed", 1, "data synthesis seed for -execute")
		feedback  = flag.Bool("feedback", false, "with -execute: re-optimize remaining joins mid-query on misestimates")
		qerror    = flag.Float64("qerror", 0, "with -feedback: per-join q-error threshold that triggers re-optimization (0: the default 2)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: %s [flags]\n\nflags:\n", os.Args[0])
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nstrategies:\n")
		for _, name := range joinorder.Strategies() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", name, joinorder.Describe(name))
		}
	}
	flag.Parse()

	// Ctrl-C cancels the context; the solver stack unwinds promptly and
	// anytime strategies still report their best incumbent.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	q, err := loadQuery(*queryFile, *sqlText, *catFile, *shapeName, *tables, *seed, *execute)
	if err != nil {
		fatal(err)
	}
	opts, err := buildOptions(*precision, *metric)
	if err != nil {
		fatal(err)
	}
	opts.Strategy = *strat
	opts.Budget = joinorder.Budget{TimeLimit: *timeout, GapTol: *gap, Threads: *threads}
	opts.Seed = *seed
	opts.PartitionCap = *partCap
	opts.SeamBudgetFrac = *seamFrac
	if *portfolio != "" {
		opts.Portfolio = strings.Split(*portfolio, ",")
	}

	// Event counters back both the JSON document and the expvar endpoint.
	// The solver serialises event callbacks, so no extra locking is needed.
	eventCounts := make(map[string]int)
	var events []joinorder.Event
	var evMap *expvar.Map
	if *metrics != "" {
		evMap = expvar.NewMap("joinopt_events")
		go func() {
			if err := http.ListenAndServe(*metrics, nil); err != nil {
				fmt.Fprintln(os.Stderr, "joinopt: metrics endpoint:", err)
			}
		}()
		if !*jsonOut {
			fmt.Printf("metrics: http://%s/debug/vars (expvar), /debug/pprof (profiles)\n", *metrics)
		}
	}
	opts.OnEvent = func(ev joinorder.Event) {
		eventCounts[ev.Kind.String()]++
		if evMap != nil {
			evMap.Add(ev.Kind.String(), 1)
		}
		if *jsonOut {
			if *traceEv {
				events = append(events, ev)
			}
			return
		}
		switch {
		case *traceEv:
			fmt.Println("  " + ev.String())
		case !*quiet && (ev.Kind == joinorder.KindIncumbent || ev.Kind == joinorder.KindBound):
			inc := "-"
			if ev.HasIncumbent {
				inc = fmt.Sprintf("%.6g", ev.Incumbent)
			}
			fmt.Printf("  t=%-8s incumbent=%-14s bound=%-14.6g gap=%.3f nodes=%d\n",
				ev.Elapsed.Truncate(time.Millisecond), inc, ev.Bound, ev.Gap, ev.Nodes)
		}
	}

	if *lpFile != "" {
		if err := writeLP(*lpFile, q, opts); err != nil {
			fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("wrote %s\n", *lpFile)
		}
	}

	if !*jsonOut {
		fmt.Printf("optimizing %d tables, %d predicates (%s strategy, %s metric, %s precision)\n",
			q.NumTables(), len(q.Predicates), *strat, *metric, *precision)
	}
	var co *cache.Optimizer
	if *cacheOn {
		var err error
		if co, err = cache.New(cache.Config{}); err != nil {
			fatal(err)
		}
	}
	if *execute {
		eo := joinorder.ExecOptions{
			DataSeed:        *execSeed,
			Feedback:        *feedback,
			QErrorThreshold: *qerror,
		}
		for run := 0; run < max(*repeat, 1); run++ {
			if err := runExecuted(ctx, os.Stdout, co, q, opts, eo, *jsonOut); err != nil {
				if errors.Is(err, joinorder.ErrCanceled) || errors.Is(err, joinorder.ErrNoPlan) {
					fmt.Fprintf(os.Stderr, "joinopt: no executed plan within the budget (%v)\n", err)
					os.Exit(2)
				}
				fatal(err)
			}
		}
		if co != nil {
			// Let a corrected-cardinality refresh land before reporting.
			co.Wait()
			if *stats {
				printCacheStats(co)
			}
		}
		return
	}
	if *repeat < 1 {
		fatal(fmt.Errorf("-repeat must be at least 1"))
	}

	var res *joinorder.Result
	start := time.Now()
	for run := 0; run < *repeat; run++ {
		runStart := time.Now()
		var err error
		if co != nil {
			res, err = co.Optimize(ctx, q, opts)
		} else {
			res, err = joinorder.Optimize(ctx, q, opts)
		}
		switch {
		case errors.Is(err, joinorder.ErrCanceled), errors.Is(err, joinorder.ErrNoPlan):
			if *jsonOut {
				json.NewEncoder(os.Stdout).Encode(map[string]any{"error": err.Error()})
			} else {
				fmt.Printf("no plan found within the budget (%v)\n", err)
			}
			os.Exit(2)
		case err != nil:
			fatal(err)
		}
		if !*jsonOut && *repeat > 1 {
			fmt.Printf("run %d/%d: %v cost=%.6g in %v\n", run+1, *repeat,
				res.Status, res.Cost, time.Since(runStart).Truncate(time.Microsecond))
		}
	}

	if *jsonOut {
		if err := printJSON(os.Stdout, q, res, *strat, *metric, *precision, eventCounts, events, co); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("status: %v after %v", res.Status, time.Since(start).Truncate(time.Millisecond))
	if res.Nodes > 0 {
		fmt.Printf(" (%d nodes)", res.Nodes)
	}
	fmt.Println()
	if res.Winner != "" {
		fmt.Printf("winner:     %s\n", res.Winner)
	}
	switch {
	case res.Plan != nil:
		fmt.Printf("plan:       %s\n", res.Plan)
		if res.Plan.Operators != nil {
			ops := make([]string, len(res.Plan.Operators))
			for i, op := range res.Plan.Operators {
				ops[i] = op.String()
			}
			fmt.Printf("operators:  %s\n", strings.Join(ops, ", "))
		}
	case res.Tree != nil:
		fmt.Printf("tree:       %s\n", res.Tree)
	}
	fmt.Printf("exact cost: %.6g\n", res.Cost)
	if !math.IsInf(res.Bound, -1) { // strategy proves a lower bound
		fmt.Printf("objective:  %.6g (bound %.6g, gap %.4f)\n", res.Objective, res.Bound, res.Gap)
	}
	if *stats && res.Stats != nil {
		fmt.Println("solver statistics:")
		for _, line := range strings.Split(res.Stats.String(), "\n") {
			fmt.Println("  " + line)
		}
	}
	if *stats && co != nil {
		printCacheStats(co)
	}
}

// runExecuted is the -execute path: optimize, synthesize data matching
// the query's statistics, run the plan through the streaming executor,
// and report the estimated next to the executed cost per join. With
// -cache the optimize leg goes through the plan cache, and executions
// whose measured cardinalities diverge feed corrected statistics back
// into it (invalidate + background refresh).
func runExecuted(ctx context.Context, w io.Writer, co *cache.Optimizer, q *qopt.Query, opts joinorder.Options, eo joinorder.ExecOptions, jsonOut bool) error {
	var ex *joinorder.Execution
	var err error
	if co != nil {
		ex, err = co.OptimizeExecuted(ctx, q, opts, eo)
	} else {
		ex, err = joinorder.OptimizeExecuted(ctx, q, opts, eo)
	}
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{
			"result":    ex.Result,
			"execution": ex,
		})
	}
	res := ex.Result
	fmt.Fprintf(w, "status: %v after %v\n", res.Status, res.Elapsed.Truncate(time.Millisecond))
	switch {
	case res.Plan != nil:
		fmt.Fprintf(w, "plan:       %s\n", res.Plan)
	case res.Tree != nil:
		fmt.Fprintf(w, "tree:       %s\n", res.Tree)
	}
	fmt.Fprintln(w, "execution:")
	for _, j := range ex.Joins {
		fmt.Fprintf(w, "  join %-16v est %-12.6g measured %-10g q-error %.3g\n",
			j.Tables, j.Estimated, j.Measured, j.QError)
	}
	fmt.Fprintf(w, "estimated C_out: %.6g\n", ex.EstimatedCout)
	fmt.Fprintf(w, "executed C_out:  %.6g\n", ex.ExecutedCout)
	fmt.Fprintf(w, "max q-error:     %.3g\n", ex.MaxQError)
	fmt.Fprintf(w, "result rows:     %d\n", ex.ResultRows)
	if eo.Feedback {
		fmt.Fprintf(w, "re-optimizations: %d\n", ex.Reoptimizations)
	}
	return nil
}

// printCacheStats renders the cache counters and the per-entry table of
// -cache -stats mode, hottest entries first.
func printCacheStats(co *cache.Optimizer) {
	cs := co.Stats()
	fmt.Println("cache statistics:")
	fmt.Printf("  hits=%d misses=%d coalesced=%d hit-rate=%.2f\n",
		cs.Hits, cs.Misses, cs.Coalesced, cs.HitRate())
	fmt.Printf("  warm-starts=%d accepted=%d degraded=%d refines=%d uncacheable=%d\n",
		cs.WarmStarts, cs.WarmStartAccepted, cs.Degraded, cs.Refines, cs.Uncacheable)
	fmt.Printf("  entries=%d donors=%d evicted=%d expired=%d\n",
		cs.Entries, cs.Donors, cs.Evicted, cs.Expired)
	entries := co.Entries()
	cache.SortEntries(entries)
	for _, e := range entries {
		key := e.Key
		if len(key) > 40 {
			key = key[:40] + "…"
		}
		fmt.Printf("  entry %-42s hits=%-4d tables=%-3d cost=%-12.6g age=%v\n",
			key, e.Hits, e.Tables, e.Cost, e.Age.Truncate(time.Millisecond))
	}
}

// printJSON emits the one machine-readable document of -json mode: query
// shape, the full result (plan, cost, bound, per-phase stats), and the
// event-kind counts — plus the raw event stream under -trace-events.
func printJSON(w io.Writer, q *qopt.Query, res *joinorder.Result, strat, metric, precision string,
	eventCounts map[string]int, events []joinorder.Event, co *cache.Optimizer) error {
	doc := map[string]any{
		"query": map[string]any{
			"tables":     q.NumTables(),
			"predicates": len(q.Predicates),
			"strategy":   strat,
			"metric":     metric,
			"precision":  precision,
		},
		"result": res,
	}
	if len(eventCounts) > 0 {
		doc["event_counts"] = eventCounts
	}
	if events != nil {
		doc["events"] = events
	}
	if co != nil {
		// Background refines from degraded serving land before the
		// snapshot, so the document is self-contained: counters plus the
		// per-entry table, hottest first — no second -stats run needed.
		co.Wait()
		doc["cache"] = co.Stats()
		entries := co.Entries()
		cache.SortEntries(entries)
		doc["cache_entries"] = entries
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// writeLP encodes the query with the MILP encoder and writes the model in
// LP text format — inspection tooling on top of the public options.
func writeLP(path string, q *qopt.Query, opts joinorder.Options) error {
	enc, err := core.Encode(q, core.Options{
		Precision:       opts.Precision,
		ThresholdRatio:  opts.ThresholdRatio,
		CardCap:         opts.CardCap,
		Metric:          opts.Metric,
		Op:              opts.Op,
		ChooseOperators: opts.ChooseOperators,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := enc.Model.WriteLP(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadQuery(file, sqlText, catFile, shapeName string, tables int, seed int64, execute bool) (*qopt.Query, error) {
	if sqlText != "" {
		if catFile == "" {
			return nil, fmt.Errorf("-sql requires -catalog")
		}
		data, err := os.ReadFile(catFile)
		if err != nil {
			return nil, err
		}
		cat := sql.NewCatalog()
		if err := json.Unmarshal(data, &cat.Tables); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", catFile, err)
		}
		stmt, err := sql.Parse(sqlText)
		if err != nil {
			return nil, err
		}
		q, _, err := cat.Translate(stmt)
		return q, err
	}
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		var q qopt.Query
		if err := json.Unmarshal(data, &q); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", file, err)
		}
		return &q, q.Validate()
	}
	shape, err := parseShape(shapeName)
	if err != nil {
		return nil, err
	}
	cfg := workload.Config{}
	if execute {
		// The plan will actually run: keep tables small (10…300 rows)
		// and selectivities moderate so every intermediate result stays
		// materializable. The default generator range (up to 100,000-row
		// tables) is meant for optimization benchmarks, not execution.
		cfg = workload.Config{MinLogCard: 1, MaxLogCard: 2.5, MinSel: 0.01, MaxSel: 0.5}
	}
	q := workload.Generate(shape, tables, seed, cfg)
	if execute {
		capExecutableGrowth(q)
	}
	return q, nil
}

// capExecutableGrowth clamps every binary predicate's selectivity so the
// estimated growth along its edge — selectivity times the smaller incident
// cardinality — stays at or below 2×. Without the clamp a generated chain
// can multiply by card·sel ≈ 150 at every join, and an 8-table query
// produces billions of intermediate rows; with it the worst case is 2^(n-1)
// times the largest table, which executes in milliseconds at these sizes.
func capExecutableGrowth(q *qopt.Query) {
	const maxGrowth = 2.0
	for i := range q.Predicates {
		p := &q.Predicates[i]
		if len(p.Tables) != 2 {
			continue
		}
		minCard := math.Min(q.Tables[p.Tables[0]].Card, q.Tables[p.Tables[1]].Card)
		if minCard > 0 && p.Sel*minCard > maxGrowth {
			p.Sel = maxGrowth / minCard
		}
	}
}

func parseShape(s string) (workload.GraphShape, error) {
	switch s {
	case "chain":
		return workload.Chain, nil
	case "cycle":
		return workload.Cycle, nil
	case "star":
		return workload.Star, nil
	case "clique":
		return workload.Clique, nil
	case "snowflake":
		return workload.Snowflake, nil
	case "transitive":
		return workload.Transitive, nil
	default:
		return 0, fmt.Errorf("unknown shape %q", s)
	}
}

func buildOptions(precision, metric string) (joinorder.Options, error) {
	opts := joinorder.Options{}
	switch precision {
	case "high":
		opts.Precision = joinorder.PrecisionHigh
	case "medium":
		opts.Precision = joinorder.PrecisionMedium
	case "low":
		opts.Precision = joinorder.PrecisionLow
	default:
		return opts, fmt.Errorf("unknown precision %q", precision)
	}
	switch metric {
	case "cout":
		opts.Metric = joinorder.Cout
	case "hash":
		opts.Metric = joinorder.OperatorCost
		opts.Op = joinorder.HashJoin
	case "smj":
		opts.Metric = joinorder.OperatorCost
		opts.Op = joinorder.SortMergeJoin
	case "bnl":
		opts.Metric = joinorder.OperatorCost
		opts.Op = joinorder.BlockNestedLoopJoin
		opts.CardCap = 1e8
	case "choose":
		opts.Metric = joinorder.OperatorCost
		opts.Op = joinorder.HashJoin
		opts.ChooseOperators = true
		opts.CardCap = 1e8
	default:
		return opts, fmt.Errorf("unknown metric %q", metric)
	}
	return opts, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "joinopt:", err)
	os.Exit(1)
}
