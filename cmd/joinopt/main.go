// Command joinopt optimizes a join query via the MILP encoding and prints
// the resulting plan with its anytime quality trace.
//
// Queries come either from a JSON file (-query) or from the built-in
// Steinbrunn-style generator (-tables/-shape/-seed). Example:
//
//	joinopt -tables 20 -shape star -precision medium -timeout 10s
//	joinopt -query q.json -metric cout -lp model.lp
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"milpjoin/internal/core"
	"milpjoin/internal/cost"
	"milpjoin/internal/dp"
	"milpjoin/internal/qopt"
	"milpjoin/internal/solver"
	"milpjoin/internal/sql"
	"milpjoin/internal/workload"
)

func main() {
	var (
		queryFile = flag.String("query", "", "JSON query file (overrides the generator flags)")
		sqlText   = flag.String("sql", "", "SQL select-project-join query (requires -catalog)")
		catFile   = flag.String("catalog", "", "JSON catalog with table statistics for -sql")
		tables    = flag.Int("tables", 10, "number of tables for the generator")
		shapeName = flag.String("shape", "star", "join graph shape: chain, cycle, star, clique")
		seed      = flag.Int64("seed", 1, "generator seed")
		precision = flag.String("precision", "medium", "cardinality approximation: high, medium, low")
		metric    = flag.String("metric", "hash", "cost metric: cout, hash, smj, bnl, choose")
		timeout   = flag.Duration("timeout", 30*time.Second, "optimization time budget")
		gap       = flag.Float64("gap", 1e-6, "relative MIP gap at which to stop")
		threads   = flag.Int("threads", 4, "parallel branch-and-bound workers")
		lpFile    = flag.String("lp", "", "also write the MILP in LP format to this file")
		runDP     = flag.Bool("dp", false, "also run the dynamic programming baseline")
		quiet     = flag.Bool("quiet", false, "suppress the anytime trace")
	)
	flag.Parse()

	q, err := loadQuery(*queryFile, *sqlText, *catFile, *shapeName, *tables, *seed)
	if err != nil {
		fatal(err)
	}
	opts, err := buildOptions(*precision, *metric)
	if err != nil {
		fatal(err)
	}

	if *lpFile != "" {
		enc, err := core.Encode(q, opts)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*lpFile)
		if err != nil {
			fatal(err)
		}
		if err := enc.Model.WriteLP(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *lpFile)
	}

	params := solver.Params{
		TimeLimit: *timeout,
		GapTol:    *gap,
		Threads:   *threads,
	}
	if !*quiet {
		params.OnImprovement = func(p solver.Progress) {
			inc := "-"
			if p.HasIncumbent {
				inc = fmt.Sprintf("%.6g", p.Incumbent)
			}
			fmt.Printf("  t=%-8s incumbent=%-14s bound=%-14.6g gap=%.3f nodes=%d\n",
				p.Elapsed.Truncate(time.Millisecond), inc, p.Bound, p.Gap, p.Nodes)
		}
	}

	fmt.Printf("optimizing %d tables, %d predicates (%s metric, %s precision)\n",
		q.NumTables(), len(q.Predicates), *metric, *precision)
	start := time.Now()
	res, err := core.Optimize(q, opts, params)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("status: %v after %v (%d nodes, %d simplex iterations)\n",
		res.Solver.Status, time.Since(start).Truncate(time.Millisecond), res.Solver.Nodes, res.Solver.SimplexIters)
	if res.Plan == nil {
		fmt.Println("no plan found within the budget")
		os.Exit(2)
	}
	fmt.Printf("plan:       %s\n", res.Plan)
	if res.Plan.Operators != nil {
		ops := make([]string, len(res.Plan.Operators))
		for i, op := range res.Plan.Operators {
			ops[i] = op.String()
		}
		fmt.Printf("operators:  %s\n", strings.Join(ops, ", "))
	}
	fmt.Printf("milp obj:   %.6g (bound %.6g, gap %.4f)\n", res.MILPObj, res.Solver.Bound, res.Solver.Gap)
	fmt.Printf("exact cost: %.6g\n", res.ExactCost)

	if *runDP {
		spec := opts.Spec()
		dpStart := time.Now()
		pl, c, err := dp.OptimizeLeftDeep(q, spec, dp.Options{Deadline: dpStart.Add(*timeout)})
		if err != nil {
			fmt.Printf("dp:         no plan (%v)\n", err)
		} else {
			fmt.Printf("dp:         %s cost %.6g in %v\n", pl, c, time.Since(dpStart).Truncate(time.Millisecond))
		}
	}
}

func loadQuery(file, sqlText, catFile, shapeName string, tables int, seed int64) (*qopt.Query, error) {
	if sqlText != "" {
		if catFile == "" {
			return nil, fmt.Errorf("-sql requires -catalog")
		}
		data, err := os.ReadFile(catFile)
		if err != nil {
			return nil, err
		}
		cat := sql.NewCatalog()
		if err := json.Unmarshal(data, &cat.Tables); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", catFile, err)
		}
		stmt, err := sql.Parse(sqlText)
		if err != nil {
			return nil, err
		}
		q, _, err := cat.Translate(stmt)
		return q, err
	}
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		var q qopt.Query
		if err := json.Unmarshal(data, &q); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", file, err)
		}
		return &q, q.Validate()
	}
	shape, err := parseShape(shapeName)
	if err != nil {
		return nil, err
	}
	return workload.Generate(shape, tables, seed, workload.Config{}), nil
}

func parseShape(s string) (workload.GraphShape, error) {
	switch s {
	case "chain":
		return workload.Chain, nil
	case "cycle":
		return workload.Cycle, nil
	case "star":
		return workload.Star, nil
	case "clique":
		return workload.Clique, nil
	default:
		return 0, fmt.Errorf("unknown shape %q", s)
	}
}

func buildOptions(precision, metric string) (core.Options, error) {
	opts := core.Options{}
	switch precision {
	case "high":
		opts.Precision = core.PrecisionHigh
	case "medium":
		opts.Precision = core.PrecisionMedium
	case "low":
		opts.Precision = core.PrecisionLow
	default:
		return opts, fmt.Errorf("unknown precision %q", precision)
	}
	switch metric {
	case "cout":
		opts.Metric = cost.Cout
	case "hash":
		opts.Metric = cost.OperatorCost
		opts.Op = cost.HashJoin
	case "smj":
		opts.Metric = cost.OperatorCost
		opts.Op = cost.SortMergeJoin
	case "bnl":
		opts.Metric = cost.OperatorCost
		opts.Op = cost.BlockNestedLoopJoin
		opts.CardCap = 1e8
	case "choose":
		opts.Metric = cost.OperatorCost
		opts.Op = cost.HashJoin
		opts.ChooseOperators = true
		opts.CardCap = 1e8
	default:
		return opts, fmt.Errorf("unknown metric %q", metric)
	}
	return opts, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "joinopt:", err)
	os.Exit(1)
}
