package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"milpjoin/internal/workload"
	"milpjoin/joinorder/server"
)

// TestClusterProcessSmoke boots a real three-process joinoptd ring and
// hammers it: 5,000 in-flight requests over a small fingerprint corpus
// must all be answered, and a node restarted onto its persistent cache
// directory must serve the corpus warm. Heavyweight (builds the binary,
// forks processes), so it is gated:
//
//	CLUSTER_SMOKE=1 go test ./cmd/joinoptd -run TestClusterProcessSmoke -v
func TestClusterProcessSmoke(t *testing.T) {
	if os.Getenv("CLUSTER_SMOKE") == "" {
		t.Skip("set CLUSTER_SMOKE=1 to run the multi-process cluster smoke")
	}

	bin := filepath.Join(t.TempDir(), "joinoptd")
	build := exec.Command("go", "build", "-o", bin, "milpjoin/cmd/joinoptd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building joinoptd: %v", err)
	}

	const nodes = 3
	ports := make([]int, nodes)
	for i := range ports {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = l.Addr().(*net.TCPAddr).Port
		l.Close()
	}
	peers := ""
	for i, p := range ports {
		if i > 0 {
			peers += ","
		}
		peers += fmt.Sprintf("n%d=http://127.0.0.1:%d", i, p)
	}
	dirs := make([]string, nodes)
	for i := range dirs {
		dirs[i] = filepath.Join(t.TempDir(), fmt.Sprintf("cache-n%d", i))
	}

	start := func(i int) *exec.Cmd {
		cmd := exec.Command(bin,
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-node-id", fmt.Sprintf("n%d", i),
			"-peers", peers,
			"-cache-dir", dirs[i],
			"-persist-sync", "always",
			"-probe-interval", "250ms",
			"-default-timeout", "10s",
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting node %d: %v", i, err)
		}
		return cmd
	}
	waitHealthy := func(i int) {
		t.Helper()
		url := fmt.Sprintf("http://127.0.0.1:%d/healthz", ports[i])
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if resp, err := http.Get(url); err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("node %d never became healthy", i)
	}
	procs := make([]*exec.Cmd, nodes)
	for i := range procs {
		procs[i] = start(i)
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				p.Process.Signal(syscall.SIGTERM) //nolint:errcheck
				p.Wait()                          //nolint:errcheck
			}
		}
	})
	for i := range procs {
		waitHealthy(i)
	}

	// A small fingerprint corpus under heavy repetition: the cache-heavy
	// serving regime the cluster is built for.
	const distinct = 40
	bodies := make([][]byte, distinct)
	for i := range bodies {
		req := server.OptimizeRequest{
			Query:    workload.Generate(workload.Chain, 8, int64(i+1), workload.Config{}),
			Strategy: "dp-leftdeep",
			Timeout:  "10s",
		}
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = b
	}

	const total = 5000
	const workers = 128
	var answered, failed atomic.Int64
	client := &http.Client{Timeout: 30 * time.Second}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				url := fmt.Sprintf("http://127.0.0.1:%d/v1/optimize", ports[i%nodes])
				resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i%distinct]))
				if err != nil {
					failed.Add(1)
					continue
				}
				var out struct {
					Result *json.RawMessage `json:"result"`
				}
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK || out.Result == nil {
					failed.Add(1)
					continue
				}
				answered.Add(1)
			}
		}()
	}
	for i := 0; i < total; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if answered.Load() != total || failed.Load() != 0 {
		t.Fatalf("answered %d/%d, %d failed — the cluster left requests unanswered",
			answered.Load(), total, failed.Load())
	}

	// Restart n0 onto its persistent cache directory: the corpus must be
	// served warm (locally replayed or forwarded to still-warm peers).
	procs[0].Process.Signal(syscall.SIGTERM) //nolint:errcheck
	if err := procs[0].Wait(); err != nil {
		t.Fatalf("node 0 exited uncleanly: %v", err)
	}
	procs[0] = start(0)
	waitHealthy(0)

	hits := 0
	for i, body := range bodies {
		url := fmt.Sprintf("http://127.0.0.1:%d/v1/optimize", ports[0])
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("warm request %d: %v", i, err)
		}
		var out struct {
			CacheHit bool `json:"cache_hit"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("warm request %d: decoding: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm request %d: status %d", i, resp.StatusCode)
		}
		if out.CacheHit {
			hits++
		}
	}
	if rate := float64(hits) / distinct; rate < 0.95 {
		t.Fatalf("warm hit rate after restart %.2f (%d/%d), want ≥ 0.95", rate, hits, distinct)
	}
	t.Logf("smoke: %d requests answered, warm hit rate %d/%d after restart", total, hits, distinct)
}
