// Command joinoptd serves join-order optimization over HTTP: a network
// daemon fronting the plan cache and the anytime MILP solver with
// admission control, per-tenant rate limits, request coalescing, and
// load shedding into degraded (fallback-strategy) plans.
//
// Endpoints:
//
//	POST /v1/optimize         one JSON request → one JSON plan
//	POST /v1/optimize/batch   many requests → one JSON document with
//	                          per-query result-or-error envelopes
//	POST /v1/optimize/stream  the same request, answered as an SSE stream
//	                          of solver events ending in a result event
//	POST /v1/cluster/entry    peer-to-peer cache replication ingest
//	GET  /healthz             "ok", or 503 while draining
//	GET  /varz                expvar JSON (key "joinoptd")
//	GET  /metrics             Prometheus text exposition
//
// Example:
//
//	joinoptd -addr :8080 -workers 8 -default-timeout 5s
//	curl -s localhost:8080/v1/optimize -d '{"sql":"...","catalog":{...}}'
//
// With -cache-dir the plan cache is disk-backed: stored plans append to
// a crash-safe record log replayed on startup, so a restarted daemon
// serves previously seen queries without re-solving.
//
// With -peers and -node-id the daemon joins a sharded cluster: a
// consistent-hash ring over canonical query fingerprints routes each
// request to its owning node (misses that hash elsewhere are forwarded),
// fresh cache entries replicate to ring successors, and a node whose
// peer is down fails open to a local solve:
//
//	joinoptd -addr :8080 -node-id n0 -cache-dir /var/lib/joinoptd/n0 \
//	  -peers n0=http://10.0.0.1:8080,n1=http://10.0.0.2:8080,n2=http://10.0.0.3:8080
//
// SIGTERM or SIGINT begins a graceful drain: new work is refused with
// 503 + Retry-After, in-flight solves (including background refines)
// complete, then the process exits. A second signal force-exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"milpjoin/joinorder/cache"
	"milpjoin/joinorder/cache/persist"
	"milpjoin/joinorder/cluster"
	"milpjoin/joinorder/server"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		workers        = flag.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
		queueDepth     = flag.Int("queue", 0, "admission queue depth (0 = 8×workers)")
		defaultTimeout = flag.Duration("default-timeout", 10*time.Second, "solve budget when the request names none")
		maxTimeout     = flag.Duration("max-timeout", time.Minute, "hard cap on any request's solve budget")
		tenantRate     = flag.Float64("tenant-rate", 0, "per-tenant requests/sec (0 = unlimited)")
		tenantBurst    = flag.Int("tenant-burst", 0, "per-tenant burst (0 = ceil(rate))")
		cacheEntries   = flag.Int("cache-entries", 1024, "plan cache capacity")
		cacheTTL       = flag.Duration("cache-ttl", 0, "plan cache entry TTL (0 = no expiry)")
		cacheMaxBytes  = flag.Int64("cache-max-bytes", 0, "plan cache byte bound (0 = entry count only)")
		cacheDir       = flag.String("cache-dir", "", "directory for the persistent plan log (empty = memory only)")
		persistSync    = flag.String("persist-sync", "interval", "persistent log fsync policy: interval, always, or none")
		degradeUnder   = flag.Duration("degrade-under", 150*time.Millisecond, "serve a fallback plan when the budget is below this (0 = never)")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight work on shutdown")
		nodeID         = flag.String("node-id", "", "this node's cluster peer ID (requires -peers)")
		peerList       = flag.String("peers", "", "static cluster membership as id=url,id=url (includes this node)")
		replicas       = flag.Int("replicas", 2, "ring successors receiving copies of each stored entry")
		probeInterval  = flag.Duration("probe-interval", 2*time.Second, "peer health probe period")
		logEvents      = flag.Bool("log-events", false, "log every solver event at debug level")
		verbose        = flag.Bool("v", false, "debug logging")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "joinoptd:", err)
		os.Exit(2)
	}

	var plog *persist.Log
	if *cacheDir != "" {
		policy, err := persist.ParseSyncPolicy(*persistSync)
		if err != nil {
			fatal(err)
		}
		plog, err = persist.Open(persist.Config{Dir: *cacheDir, Policy: policy})
		if err != nil {
			fatal(err)
		}
		defer plog.Close()
	}

	var router *cluster.Router
	if *peerList != "" || *nodeID != "" {
		peers, err := cluster.ParsePeers(*peerList)
		if err != nil {
			fatal(err)
		}
		router, err = cluster.New(cluster.Config{
			Self:          *nodeID,
			Peers:         peers,
			Replicas:      *replicas,
			ProbeInterval: *probeInterval,
			Logger:        log,
		})
		if err != nil {
			fatal(err)
		}
		defer router.Close()
	}

	srv, err := server.New(server.Config{
		MaxWorkers:       *workers,
		QueueDepth:       *queueDepth,
		DefaultTimeLimit: *defaultTimeout,
		MaxTimeLimit:     *maxTimeout,
		TenantRate:       *tenantRate,
		TenantBurst:      *tenantBurst,
		Cache: cache.Config{
			MaxEntries:   *cacheEntries,
			MaxBytes:     *cacheMaxBytes,
			TTL:          *cacheTTL,
			DegradeUnder: *degradeUnder,
			Persist:      plog,
		},
		Cluster:   router,
		Logger:    log,
		LogEvents: *logEvents,
	})
	if err != nil {
		fatal(err)
	}
	if plog != nil {
		ps := plog.Stats()
		cs := srv.Cache().Stats()
		log.Info("plan cache replayed", "dir", *cacheDir,
			"records", ps.LiveRecords, "entries", cs.Entries, "donors", cs.Donors,
			"evicted", cs.ReplayEvicted, "torn_bytes_dropped", ps.TornBytesDropped)
	}
	if router != nil {
		log.Info("cluster membership", "self", *nodeID, "peers", *peerList, "replicas", *replicas)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Info("joinoptd listening", "addr", *addr,
		"workers", *workers, "gomaxprocs", runtime.GOMAXPROCS(0))

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errc:
		log.Error("serve failed", "err", err)
		os.Exit(1)
	case sig := <-sigc:
		log.Info("draining", "signal", sig.String(), "timeout", *drainTimeout)
	}

	// Graceful drain: refuse new work, let in-flight requests (and the
	// cache's background refines) finish, then exit. A second signal
	// force-exits immediately.
	srv.BeginDrain()
	go func() {
		sig := <-sigc
		log.Warn("force exit", "signal", sig.String())
		os.Exit(1)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Warn("http shutdown incomplete", "err", err)
	}
	if err := srv.Drain(ctx); err != nil {
		log.Warn("drain incomplete", "err", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("serve failed", "err", err)
		os.Exit(1)
	}
}
