// Serving with the plan cache: the same optimizer behind a
// cache.Optimizer front-end, exercised the way a query serving layer
// would — repeated queries, isomorphic relabelings of the same query,
// and statistics drift.
//
// Three effects are shown:
//
//  1. an identical repeat and a relabeled variant of an already-solved
//     query are served from the cache in microseconds, because the
//     cache key is a canonical fingerprint that is invariant under
//     table renumbering;
//
//  2. after the table statistics drift, the query misses the exact
//     cache but the cached plan for the same shape warm-starts the new
//     solve (the solver begins with an incumbent instead of from
//     scratch);
//
//  3. under a tight deadline the cache degrades gracefully: it answers
//     immediately with a greedy plan and refines the MILP solution in
//     the background, so the next request hits the refined entry.
//
//     go run ./examples/caching
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"milpjoin/internal/workload"
	"milpjoin/joinorder"
	"milpjoin/joinorder/cache"
)

func main() {
	co, err := cache.New(cache.Config{
		// Answer from the fallback strategy when under 250ms of budget
		// remains, refining the real solution in the background.
		DegradeUnder: 250 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	opts := joinorder.Options{
		Strategy:  "milp",
		Precision: joinorder.PrecisionMedium,
		TimeLimit: 30 * time.Second,
	}
	query := workload.Generate(workload.Chain, 10, 1, workload.Config{})

	// 1. Cold solve, identical repeat, relabeled repeat.
	solve := func(label string, q *joinorder.Query, o joinorder.Options) *joinorder.Result {
		start := time.Now()
		res, err := co.Optimize(context.Background(), q, o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %-9v cost=%-12.6g in %v\n",
			label, res.Status, res.Cost, time.Since(start).Truncate(time.Microsecond))
		return res
	}
	solve("cold solve", query, opts)
	solve("identical repeat", query, opts)

	relabeled := relabel(query)
	solve("relabeled repeat", relabeled, opts)

	// 2. Statistics drift: every cardinality grows 20%. The exact entry
	// no longer matches, but the shape still does, so the cached plan
	// seeds the new solve as its initial incumbent.
	drifted := &joinorder.Query{
		Tables:     append([]joinorder.Table(nil), query.Tables...),
		Predicates: query.Predicates,
	}
	for i := range drifted.Tables {
		drifted.Tables[i].Card *= 1.2
	}
	res := solve("after 20% stats drift", drifted, opts)
	st := co.Stats()
	fmt.Printf("  warm-started=%v (mip start: %q)\n", st.WarmStarts > 0, res.MIPStart)

	// 3. Tight deadline: served degraded, refined in the background.
	tight := opts
	tight.TimeLimit = 100 * time.Millisecond
	fresh := workload.Generate(workload.Star, 12, 9, workload.Config{})
	res = solve("fresh query, 100ms budget", fresh, tight)
	fmt.Printf("  served strategy: %s (degraded=%d)\n", res.Strategy, co.Stats().Degraded)
	co.Wait() // let the background refine land
	res = solve("same query, after refine", fresh, opts)
	fmt.Printf("  served strategy: %s\n", res.Strategy)

	st = co.Stats()
	fmt.Printf("\ncache: hits=%d misses=%d warm-starts=%d degraded=%d refines=%d hit-rate=%.2f\n",
		st.Hits, st.Misses, st.WarmStarts, st.Degraded, st.Refines, st.HitRate())
}

// relabel reverses the table numbering — an isomorphic query that any
// naive cache key would treat as new.
func relabel(q *joinorder.Query) *joinorder.Query {
	n := len(q.Tables)
	out := &joinorder.Query{Tables: make([]joinorder.Table, n)}
	for i, t := range q.Tables {
		out.Tables[n-1-i] = t
	}
	for _, p := range q.Predicates {
		np := p
		np.Tables = make([]int, len(p.Tables))
		for k, t := range p.Tables {
			np.Tables[k] = n - 1 - t
		}
		out.Predicates = append(out.Predicates, np)
	}
	return out
}
