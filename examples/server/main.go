// Network serving: joinoptd as a library. The example starts the serving
// daemon in-process on a loopback listener, then plays a client against
// it: a plain JSON optimize round trip, a repeat of the same query showing
// the plan-cache hit, and a streamed solve over Server-Sent Events where
// the anytime gap tightens live — exactly what `joinoptd` serves over the
// network, minus the process boundary.
//
//	go run ./examples/server
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"milpjoin/internal/workload"
	"milpjoin/joinorder"
	"milpjoin/joinorder/server"
)

func main() {
	// The daemon, embedded: the same Server that cmd/joinoptd wraps.
	srv, err := server.New(server.Config{
		MaxWorkers:       4,
		DefaultTimeLimit: 5 * time.Second,
		Logger:           slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	fmt.Printf("joinoptd serving on %s\n\n", ts.URL)

	// 1. One optimize round trip: a 12-table chain, exact DP.
	body, _ := json.Marshal(map[string]any{
		"query":    workload.Generate(workload.Chain, 12, 3, workload.Config{}),
		"strategy": "dp-leftdeep",
	})
	out := post(ts.URL, body)
	fmt.Printf("POST /v1/optimize      %-9s cost=%.4g  %v\n",
		out.Result.Status, out.Result.Cost, out.Result.Plan)

	// 2. The same query again: answered from the plan cache.
	out = post(ts.URL, body)
	fmt.Printf("POST /v1/optimize      %-9s cache_hit=%v  total=%.2fms\n\n",
		out.Result.Status, out.CacheHit, out.TotalMillis)

	// 3. A streamed MILP solve on a 20-table star: each SSE event is one
	// solver event; watch the proven gap tighten until the budget ends.
	body, _ = json.Marshal(map[string]any{
		"query":    workload.Generate(workload.Star, 20, 42, workload.Config{}),
		"strategy": "milp",
		"timeout":  "3s",
		"threads":  2,
	})
	fmt.Println("POST /v1/optimize/stream  (anytime trace)")
	resp, err := http.Post(ts.URL+"/v1/optimize/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()

	var event string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "incumbent", "bound":
				var ev joinorder.Event
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %-9s t=%-8s incumbent=%-12.6g bound=%-12.6g gap=%.4f\n",
					event, ev.Elapsed.Truncate(time.Millisecond), ev.Incumbent, ev.Bound, ev.Gap)
			case "result":
				var final server.OptimizeResponse
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  result    %s: cost=%.6g gap=%.4f after %d nodes\n",
					final.Result.Status, final.Result.Cost, final.Result.Gap, final.Result.Nodes)
			}
		}
	}

	// Graceful shutdown, as SIGTERM would do it in the daemon.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndrained cleanly")
}

// post sends one optimize request and decodes the response.
func post(baseURL string, body []byte) *server.OptimizeResponse {
	resp, err := http.Post(baseURL+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("optimize: %s: %s", resp.Status, msg)
	}
	var out server.OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return &out
}
