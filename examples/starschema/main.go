// Star schema: optimize a warehouse-style query — a fact table joined with
// five dimensions — letting the MILP pick the join operator per join
// (Section 5.3) and exploit interesting orders (Section 5.4): two dimension
// tables are stored sorted on their keys, so sort-merge joins can skip sort
// phases.
//
//	go run ./examples/starschema
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"milpjoin/internal/cost"
	"milpjoin/internal/plan"
	"milpjoin/joinorder"
)

func main() {
	query := &joinorder.Query{
		Tables: []joinorder.Table{
			{Name: "sales", Card: 500000},
			{Name: "date_dim", Card: 3650, Sorted: true},
			{Name: "store", Card: 120},
			{Name: "item", Card: 40000, Sorted: true},
			{Name: "customer", Card: 80000},
			{Name: "promo", Card: 300},
		},
		Predicates: []joinorder.Predicate{
			{Name: "sales.date = date_dim.id", Tables: []int{0, 1}, Sel: 1.0 / 3650},
			{Name: "sales.store = store.id", Tables: []int{0, 2}, Sel: 1.0 / 120},
			{Name: "sales.item = item.id", Tables: []int{0, 3}, Sel: 1.0 / 40000},
			{Name: "sales.cust = customer.id", Tables: []int{0, 4}, Sel: 1.0 / 80000},
			{Name: "sales.promo = promo.id", Tables: []int{0, 5}, Sel: 1.0 / 300},
		},
	}

	res, err := joinorder.Optimize(context.Background(), query, joinorder.Options{
		Precision:         joinorder.PrecisionHigh,
		Metric:            joinorder.OperatorCost,
		Op:                joinorder.HashJoin,
		CardCap:           1e9,
		ChooseOperators:   true,
		InterestingOrders: true,
		TimeLimit:         30 * time.Second,
		Threads:           4,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("status: %v (gap %.4f, %d nodes)\n", res.Status, res.Gap, res.Nodes)
	fmt.Println("plan, join by join:")
	spec := cost.Spec{Metric: cost.OperatorCost, Op: cost.HashJoin, Params: cost.Params{}.WithDefaults()}
	eval, err := plan.Evaluate(query, res.Plan, spec)
	if err != nil {
		log.Fatal(err)
	}
	outer := query.TableName(res.Plan.Order[0])
	for j, step := range eval.Steps {
		fmt.Printf("  %d: (%s) ⋈[%s] %s   outer %.0f × inner %.0f → %.0f rows\n",
			j, outer, step.Operator, query.TableName(step.Inner),
			step.OuterCard, step.InnerCard, step.ResultCard)
		outer = outer + " ⋈ " + query.TableName(step.Inner)
	}
	fmt.Printf("exact operator cost: %.0f page I/Os\n", res.Cost)
}
