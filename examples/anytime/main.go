// Anytime optimization: the property the paper gets for free from MILP
// solvers, surfaced in the public API as context cancellation. On a
// 30-table chain query — beyond what dynamic programming finishes in this
// budget — the solver streams plans of improving quality together with a
// proven bound; when the context deadline fires mid-solve, the API still
// returns the best plan found with its quality guarantee.
//
//	go run ./examples/anytime
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"milpjoin/internal/workload"
	"milpjoin/joinorder"
)

func main() {
	const tables = 30
	budget := 15 * time.Second
	query := workload.Generate(workload.Chain, tables, 7, workload.Config{})

	fmt.Printf("chain query, %d tables — anytime MILP optimization (budget %v)\n", tables, budget)
	fmt.Printf("%-10s %-14s %-14s %s\n", "time", "incumbent", "lower bound", "proven Cost/LB")

	// The context deadline composes with Options.TimeLimit: the solver
	// stops at whichever budget expires first — here the context's.
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()

	res, err := joinorder.Optimize(ctx, query, joinorder.Options{
		Precision: joinorder.PrecisionMedium,
		Metric:    joinorder.OperatorCost,
		Op:        joinorder.HashJoin,
		TimeLimit: time.Minute, // the context deadline is tighter and wins
		GapTol:    0.5,         // stop once provably within 50% of the optimum
		Threads:   4,
		// The event stream carries the anytime trajectory: incumbent and
		// bound events snapshot the best plan cost and proven bound.
		OnEvent: func(ev joinorder.Event) {
			if ev.Kind != joinorder.KindIncumbent && ev.Kind != joinorder.KindBound {
				return
			}
			if !ev.HasIncumbent {
				return
			}
			ratio := "inf"
			if ev.Bound > 0 {
				ratio = fmt.Sprintf("%.3f", ev.Incumbent/ev.Bound)
			}
			fmt.Printf("%-10s %-14.4g %-14.4g %s\n",
				ev.Elapsed.Truncate(time.Millisecond), ev.Incumbent, ev.Bound, ratio)
		},
	})
	if err != nil {
		log.Fatalf("no plan (%v)", err)
	}
	fmt.Printf("\nfinal: %v — plan %s\n", res.Status, res.Plan)
	fmt.Printf("guarantee: cost ≤ %.3f × optimal (MILP objective %.4g, bound %.4g)\n",
		res.Objective/res.Bound, res.Objective, res.Bound)
	if res.Stats != nil {
		fmt.Printf("\nwhere the time went:\n%s\n", res.Stats)
	}

	// The baseline the paper compares against: dynamic programming gets
	// the same budget and produces nothing until it finishes.
	fmt.Printf("\ndynamic programming with the same budget: ")
	dpCtx, dpCancel := context.WithTimeout(context.Background(), budget)
	defer dpCancel()
	start := time.Now()
	dpRes, err := joinorder.Optimize(dpCtx, query, joinorder.Options{
		Strategy: "dp-leftdeep",
		Metric:   joinorder.OperatorCost,
		Op:       joinorder.HashJoin,
	})
	switch {
	case errors.Is(err, joinorder.ErrCanceled), errors.Is(err, joinorder.ErrNoPlan):
		fmt.Printf("no plan after %v (%v)\n", time.Since(start).Truncate(time.Millisecond), err)
	case err != nil:
		log.Fatal(err)
	default:
		fmt.Printf("optimal plan, cost %.4g, in %v\n", dpRes.Cost, time.Since(start).Truncate(time.Millisecond))
	}
}
