// Anytime optimization: the property the paper gets for free from MILP
// solvers. On a 20-table chain query — beyond what dynamic programming
// finishes in this budget — the solver streams plans of improving quality
// together with a proven bound on how far they can be from the optimum,
// and stops early once the plan is provably within 50% of optimal.
//
//	go run ./examples/anytime
package main

import (
	"fmt"
	"log"
	"time"

	"milpjoin/internal/core"
	"milpjoin/internal/cost"
	"milpjoin/internal/dp"
	"milpjoin/internal/solver"
	"milpjoin/internal/workload"
)

func main() {
	const tables = 30
	budget := 15 * time.Second
	query := workload.Generate(workload.Chain, tables, 7, workload.Config{})

	fmt.Printf("chain query, %d tables — anytime MILP optimization (budget %v)\n", tables, budget)
	fmt.Printf("%-10s %-14s %-14s %s\n", "time", "incumbent", "lower bound", "proven Cost/LB")

	opts := core.Options{
		Precision: core.PrecisionMedium,
		Metric:    cost.OperatorCost,
		Op:        cost.HashJoin,
	}
	res, err := core.Optimize(query, opts, solver.Params{
		TimeLimit: budget,
		GapTol:    0.5, // stop once provably within 50% of the optimum
		Threads:   4,
		OnImprovement: func(p solver.Progress) {
			if !p.HasIncumbent {
				return
			}
			ratio := "inf"
			if p.Bound > 0 {
				ratio = fmt.Sprintf("%.3f", p.Incumbent/p.Bound)
			}
			fmt.Printf("%-10s %-14.4g %-14.4g %s\n",
				p.Elapsed.Truncate(time.Millisecond), p.Incumbent, p.Bound, ratio)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Plan == nil {
		log.Fatalf("no plan (status %v)", res.Solver.Status)
	}
	fmt.Printf("\nfinal: %v — plan %s\n", res.Solver.Status, res.Plan)
	fmt.Printf("guarantee: cost ≤ %.3f × optimal (MILP objective %.4g, bound %.4g)\n",
		res.MILPObj/res.Solver.Bound, res.MILPObj, res.Solver.Bound)

	// The baseline the paper compares against: dynamic programming gets
	// the same budget and produces nothing until it finishes.
	fmt.Printf("\ndynamic programming with the same budget: ")
	start := time.Now()
	_, dpCost, err := dp.OptimizeLeftDeep(query, opts.Spec(), dp.Options{
		Deadline: start.Add(budget),
	})
	switch {
	case err != nil:
		fmt.Printf("no plan after %v (%v)\n", time.Since(start).Truncate(time.Millisecond), err)
	default:
		fmt.Printf("optimal plan, cost %.4g, in %v\n", dpCost, time.Since(start).Truncate(time.Millisecond))
	}
}
