// End to end: optimize a query with the MILP encoder, then actually run
// the chosen plan (and a deliberately bad one) over synthesized data with
// the in-memory hash-join executor — showing that the cost model's
// preferences translate into real intermediate-result sizes and that every
// join order returns the same answer.
//
//	go run ./examples/endtoend
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"milpjoin/internal/cost"
	"milpjoin/internal/exec"
	"milpjoin/internal/plan"
	"milpjoin/internal/workload"
	"milpjoin/joinorder"
)

func main() {
	// Small cardinalities so the worst plan stays executable.
	query := workload.Generate(workload.Chain, 5, 12, workload.Config{
		MinLogCard: 1.5, MaxLogCard: 2.3, // ~30 … 200 rows
		MinSel: 0.01, MaxSel: 0.1,
	})
	for i, t := range query.Tables {
		fmt.Printf("table %s: %.0f rows", t.Name, t.Card)
		if i < len(query.Predicates) {
			p := query.Predicates[i]
			fmt.Printf("   predicate %s: T%d–T%d sel %.3f", p.Name, p.Tables[0], p.Tables[1], p.Sel)
		}
		fmt.Println()
	}

	res, err := joinorder.Optimize(context.Background(), query, joinorder.Options{
		Precision: joinorder.PrecisionHigh,
		Metric:    joinorder.Cout,
		TimeLimit: 10 * time.Second,
		Threads:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMILP-optimal plan: %s (estimated C_out %.0f)\n", res.Plan, res.Cost)

	db, err := exec.Synthesize(query, 99)
	if err != nil {
		log.Fatal(err)
	}

	// A deliberately bad plan: reverse order (cross products first on
	// chain queries).
	n := query.NumTables()
	bad := &plan.Plan{Order: make([]int, n)}
	for i := range bad.Order {
		bad.Order[i] = res.Plan.Order[n-1-i]
	}
	badCost, err := plan.Cost(query, bad, cost.CoutSpec())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adversarial plan:  %s (estimated C_out %.0f)\n\n", bad, badCost)

	run := func(name string, p *plan.Plan) int {
		start := time.Now()
		out, err := db.Execute(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %8d result rows in %8s\n", name, out.NumRows(), time.Since(start).Truncate(time.Microsecond))
		return out.NumRows()
	}
	optRows := run("optimal plan:", res.Plan)
	badRows := run("adversarial plan:", bad)

	if optRows != badRows {
		log.Fatalf("join orders disagree on the result: %d vs %d rows", optRows, badRows)
	}
	fmt.Println("\nboth plans return the same result — the cost difference is purely")
	fmt.Println("in the intermediate work, which is what the MILP minimizes.")
}
