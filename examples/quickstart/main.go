// Quickstart: optimize a join query through the public joinorder API and
// print the plan with its proven optimality bound.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"milpjoin/joinorder"
)

func main() {
	// The paper's running example: R ⋈ S ⋈ T with one predicate R–S.
	query := &joinorder.Query{
		Tables: []joinorder.Table{
			{Name: "R", Card: 10},
			{Name: "S", Card: 1000},
			{Name: "T", Card: 100},
		},
		Predicates: []joinorder.Predicate{
			{Name: "R.id = S.rid", Tables: []int{0, 1}, Sel: 0.1},
		},
	}

	// The default strategy is the paper's MILP encoding: cardinalities
	// approximated on a geometric threshold ladder (here within a factor
	// of 3) and minimized under the C_out metric — the sum of
	// intermediate result sizes.
	result, err := joinorder.Optimize(context.Background(), query, joinorder.Options{
		Precision: joinorder.PrecisionHigh,
		Metric:    joinorder.Cout,
		TimeLimit: 10 * time.Second,
		Threads:   2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("status:         %v\n", result.Status)
	fmt.Printf("join order:     %s\n", result.Plan)
	fmt.Printf("approx. C_out:  %.0f (MILP objective)\n", result.Objective)
	fmt.Printf("exact C_out:    %.0f\n", result.Cost)
	fmt.Printf("proven bound:   %.0f (gap %.4f)\n", result.Bound, result.Gap)

	// Every strategy answers through the same interface; compare against
	// the exact dynamic programming baseline.
	exact, err := joinorder.Optimize(context.Background(), query, joinorder.Options{
		Strategy: "dp-leftdeep",
		Metric:   joinorder.Cout,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dp-leftdeep:    %s cost %.0f (%v)\n", exact.Plan, exact.Cost, exact.Status)
}
