// Quickstart: encode a join query as a MILP, solve it, and print the plan.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"milpjoin/internal/core"
	"milpjoin/internal/cost"
	"milpjoin/internal/qopt"
	"milpjoin/internal/solver"
)

func main() {
	// The paper's running example: R ⋈ S ⋈ T with one predicate R–S.
	query := &qopt.Query{
		Tables: []qopt.Table{
			{Name: "R", Card: 10},
			{Name: "S", Card: 1000},
			{Name: "T", Card: 100},
		},
		Predicates: []qopt.Predicate{
			{Name: "R.id = S.rid", Tables: []int{0, 1}, Sel: 0.1},
		},
	}

	// Encode with the high-precision threshold ladder (cardinalities
	// approximated within a factor of 3) and minimize the C_out metric:
	// the sum of intermediate result sizes.
	opts := core.Options{
		Precision: core.PrecisionHigh,
		Metric:    cost.Cout,
	}

	result, err := core.Optimize(query, opts, solver.Params{
		TimeLimit: 10 * time.Second,
		Threads:   2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("solver status:  %v\n", result.Solver.Status)
	fmt.Printf("join order:     %s\n", result.Plan)
	fmt.Printf("approx. C_out:  %.0f (MILP objective)\n", result.MILPObj)
	fmt.Printf("exact C_out:    %.0f\n", result.ExactCost)
	fmt.Printf("proven bound:   %.0f (gap %.4f)\n", result.Solver.Bound, result.Solver.Gap)

	// The encoding itself is inspectable: Table 1/2 of the paper in code.
	stats := result.Encoding.Stats()
	fmt.Printf("MILP size:      %d variables (%d binary), %d constraints\n",
		stats.Vars, stats.IntVars, stats.Constrs)
}
