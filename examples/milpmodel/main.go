// The MILP solver as a general-purpose library: the substrate built to
// replace Gurobi is a complete mixed integer programming solver in its own
// right. This example solves a 0/1 knapsack and an assignment problem with
// the same modelling API the join-ordering encoder uses.
//
//	go run ./examples/milpmodel
package main

import (
	"context"
	"fmt"
	"log"

	"milpjoin/internal/milp"
	"milpjoin/internal/solver"
)

func main() {
	knapsack()
	assignment()
}

func knapsack() {
	// max Σ value·x s.t. Σ weight·x ≤ 26 — minimize the negated values.
	values := []float64{12, 7, 11, 8, 9, 14, 5}
	weights := []float64{8, 5, 7, 6, 4, 10, 3}
	m := milp.NewModel("knapsack")
	capacity := milp.LinExpr{}
	vars := make([]milp.Var, len(values))
	for i := range values {
		vars[i] = m.AddBinary(-values[i], fmt.Sprintf("item%d", i))
		capacity = capacity.Add(vars[i], weights[i])
	}
	m.AddConstr(capacity, milp.LE, 26, "capacity")

	res, err := solver.Solve(context.Background(), m, solver.Params{Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knapsack: %v, total value %.0f, picked:", res.Status, -res.Solution.Obj)
	for i, v := range vars {
		if res.Solution.Value(v) > 0.5 {
			fmt.Printf(" item%d", i)
		}
	}
	fmt.Println()
}

func assignment() {
	// Assign 4 workers to 4 tasks at minimal total cost.
	costs := [][]float64{
		{9, 2, 7, 8},
		{6, 4, 3, 7},
		{5, 8, 1, 8},
		{7, 6, 9, 4},
	}
	n := len(costs)
	m := milp.NewModel("assignment")
	x := make([][]milp.Var, n)
	for w := range x {
		x[w] = make([]milp.Var, n)
		for t := range x[w] {
			x[w][t] = m.AddBinary(costs[w][t], fmt.Sprintf("x_%d_%d", w, t))
		}
	}
	for w := 0; w < n; w++ {
		m.AddConstr(milp.Sum(x[w]...), milp.EQ, 1, fmt.Sprintf("worker%d", w))
	}
	for t := 0; t < n; t++ {
		col := milp.LinExpr{}
		for w := 0; w < n; w++ {
			col = col.Add(x[w][t], 1)
		}
		m.AddConstr(col, milp.EQ, 1, fmt.Sprintf("task%d", t))
	}

	res, err := solver.Solve(context.Background(), m, solver.Params{Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assignment: %v, total cost %.0f\n", res.Status, res.Solution.Obj)
	for w := 0; w < n; w++ {
		for t := 0; t < n; t++ {
			if res.Solution.Value(x[w][t]) > 0.5 {
				fmt.Printf("  worker %d → task %d (cost %.0f)\n", w, t, costs[w][t])
			}
		}
	}
}
