// Serving-daemon benchmarks: end-to-end HTTP throughput and latency
// percentiles through joinoptd's optimize endpoint, against a live
// httptest server with the real solver behind the plan cache.
package milpjoin_test

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"milpjoin/internal/workload"
	"milpjoin/joinorder/server"
)

// benchServerBodies builds a mixed workload of optimize requests: a pool
// of chain/star/cycle queries in realistic sizes, solved with the exact
// DP strategy so plans are proven optimal and cacheable — the serving
// steady state is a hot cache with a trickle of fresh shapes.
func benchServerBodies(tb testing.TB, distinct int) [][]byte {
	tb.Helper()
	shapes := []workload.GraphShape{workload.Chain, workload.Star, workload.Cycle}
	bodies := make([][]byte, distinct)
	for i := range bodies {
		req := map[string]any{
			"query":    workload.Generate(shapes[i%len(shapes)], 6+i%6, int64(i), workload.Config{}),
			"strategy": "dp-leftdeep",
			"timeout":  "10s",
		}
		data, err := json.Marshal(req)
		if err != nil {
			tb.Fatal(err)
		}
		bodies[i] = data
	}
	return bodies
}

// BenchmarkServerThroughput drives the daemon with 64 concurrent clients
// over a 48-query working set and reports sustained requests/sec plus
// p50/p95/p99 latency. The metrics land in BENCH_pr5.json (path
// overridable via BENCH_PR5_OUT) for the CI benchmark guard.
func BenchmarkServerThroughput(b *testing.B) {
	srv, err := server.New(server.Config{
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 256
	tr.MaxIdleConnsPerHost = 256
	client := &http.Client{Transport: tr, Timeout: 30 * time.Second}

	bodies := benchServerBodies(b, 48)
	const concurrency = 64

	// Warm the cache so the benchmark measures the serving steady state.
	for _, body := range bodies {
		resp, err := client.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("warmup status %d", resp.StatusCode)
		}
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		next      atomic.Int64
		failures  atomic.Int64
	)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()

	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, 256)
			for range work {
				body := bodies[int(next.Add(1))%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					continue
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}()
	}
	for i := 0; i < b.N; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	if n := failures.Load(); n > 0 {
		b.Fatalf("%d requests failed", n)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx]
	}
	rps := float64(len(latencies)) / elapsed.Seconds()
	p50, p95, p99 := pct(0.50), pct(0.95), pct(0.99)
	b.ReportMetric(rps, "req/s")
	b.ReportMetric(float64(p50.Microseconds()), "p50-µs")
	b.ReportMetric(float64(p95.Microseconds()), "p95-µs")
	b.ReportMetric(float64(p99.Microseconds()), "p99-µs")

	snap := srv.Snapshot()
	out := struct {
		Requests    int     `json:"requests"`
		Concurrency int     `json:"concurrency"`
		ReqPerSec   float64 `json:"req_per_sec"`
		P50Micros   int64   `json:"p50_us"`
		P95Micros   int64   `json:"p95_us"`
		P99Micros   int64   `json:"p99_us"`
		CacheHits   int64   `json:"cache_hits"`
		CacheMisses int64   `json:"cache_misses"`
		Coalesced   int64   `json:"coalesced"`
		Degraded    int64   `json:"degraded"`
		Shed        int64   `json:"shed"`
	}{
		Requests:    len(latencies),
		Concurrency: concurrency,
		ReqPerSec:   rps,
		P50Micros:   p50.Microseconds(),
		P95Micros:   p95.Microseconds(),
		P99Micros:   p99.Microseconds(),
		CacheHits:   snap.Cache.Hits,
		CacheMisses: snap.Cache.Misses,
		Coalesced:   snap.Cache.Coalesced,
		Degraded:    snap.Degraded,
		Shed:        snap.Shed,
	}
	path := os.Getenv("BENCH_PR5_OUT")
	if path == "" {
		path = "BENCH_pr5.json"
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
}
