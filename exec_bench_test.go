// Streaming-executor benchmarks: pull-based streaming vs. full
// materialization on 20+ table chain pipelines, left-deep and bushy,
// with and without the adaptive feedback loop. Written as a
// BENCH_pr9.json snapshot for CI artifacts.
package milpjoin_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"

	"milpjoin/internal/exec"
	"milpjoin/internal/plan"
	"milpjoin/joinorder"
)

// chainBandCard is the per-table cardinality of the benchmark band. Each
// chain predicate's selectivity is 1/chainBandCard, so the per-join
// growth factor is exactly one: every intermediate stays near
// chainBandCard rows, a 20+ table pipeline remains executable, and the
// per-tuple cost dominates setup.
const chainBandCard = 4096

func chainBandQuery(n int) *joinorder.Query {
	q := &joinorder.Query{}
	for i := 0; i < n; i++ {
		q.Tables = append(q.Tables, joinorder.Table{Card: chainBandCard})
	}
	for i := 0; i+1 < n; i++ {
		q.Predicates = append(q.Predicates, joinorder.Predicate{
			Tables: []int{i, i + 1}, Sel: 1.0 / chainBandCard,
		})
	}
	return q
}

func leftDeepChain(n int) *plan.Tree {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return (&plan.Plan{Order: order}).LeftDeep()
}

// balancedBushy joins the chain segment [lo, hi) as a balanced binary
// tree; every split point sits on a chain edge, so no node is a cross
// product.
func balancedBushy(lo, hi int) *plan.Tree {
	if hi-lo == 1 {
		return plan.Leaf(lo)
	}
	mid := (lo + hi) / 2
	return plan.Join(balancedBushy(lo, mid), balancedBushy(mid, hi))
}

// BenchmarkExecStreaming runs the 20+ table band through the streaming
// executor and through full intermediate materialization, recording
// tuple throughput for both plus the cost of running the same plan under
// the adaptive feedback loop. Acceptance (guarded here, snapshotted to
// BENCH_pr9.json): streaming throughput is at least materializing
// throughput over the band. The guard aggregates across the band's
// entries because the two executors are near-tied per shape — a
// materializing join builds on the ACTUAL smaller input while a
// streaming join must commit to the estimated-smaller side before any
// row flows, so individual shapes sit within measurement noise and a
// per-entry comparison flips on scheduler jitter.
func BenchmarkExecStreaming(b *testing.B) {
	type run struct {
		Tables        int     `json:"tables"`
		Plan          string  `json:"plan"`
		ResultRows    int     `json:"result_rows"`
		Tuples        float64 `json:"tuples"`
		StreamSec     float64 `json:"stream_sec"`
		StreamRowsSec float64 `json:"stream_rows_per_sec"`
		MatSec        float64 `json:"materialize_sec"`
		MatRowsSec    float64 `json:"materialize_rows_per_sec"`
		Speedup       float64 `json:"stream_over_materialize"`
		FeedbackSec   float64 `json:"feedback_sec"`
		Reopts        int     `json:"reoptimizations"`
	}
	type snapshot struct {
		Band              map[string]run `json:"band"`
		BandStreamRowsSec float64        `json:"band_stream_rows_per_sec"`
		BandMatRowsSec    float64        `json:"band_materialize_rows_per_sec"`
	}

	cases := []struct {
		name string
		n    int
		tree func(n int) *plan.Tree
	}{
		{"Chain20/LeftDeep", 20, leftDeepChain},
		{"Chain20/Bushy", 20, func(n int) *plan.Tree { return balancedBushy(0, n) }},
		{"Chain24/LeftDeep", 24, leftDeepChain},
		{"Chain24/Bushy", 24, func(n int) *plan.Tree { return balancedBushy(0, n) }},
	}

	out := snapshot{Band: map[string]run{}}
	minN := math.MaxInt32
	for _, tc := range cases {
		q := chainBandQuery(tc.n)
		db, err := exec.Synthesize(q, 5)
		if err != nil {
			b.Fatal(err)
		}
		tree := tc.tree(tc.n)
		reopt := func(ctx context.Context, rem *joinorder.Query) (*plan.Tree, error) {
			res, err := joinorder.Optimize(ctx, rem, joinorder.Options{Strategy: "greedy"})
			if err != nil {
				return nil, err
			}
			return res.Tree, nil
		}

		r := run{Tables: tc.n, Plan: tc.name}

		// One reference execution establishes the expected result size and
		// the tuple flow — the full pipeline volume (every intermediate
		// row plus the final result), identical for both executors on the
		// same tree and data.
		ref, err := db.Stream(tree, exec.StreamOptions{EstQuery: q})
		if err != nil {
			b.Fatal(err)
		}
		if r.ResultRows, err = ref.Drain(); err != nil {
			b.Fatal(err)
		}
		r.Tuples = ref.Trace.MeasuredCout() + float64(r.ResultRows)

		// Each mode is its own sub-benchmark: the framework's ramp-up and
		// per-mode timing loop measure the modes independently, which is
		// far more stable than hand-interleaving them in one loop. Each
		// measured mode runs several rounds and keeps the minimum — the
		// least-noise estimator, immune to a GC or page-fault burst landing
		// in one round.
		const rounds = 4
		r.StreamSec = math.Inf(1)
		r.MatSec = math.Inf(1)
		for round := 0; round < rounds; round++ {
			// Start each round from a collected heap so one mode's garbage
			// doesn't bill the other's round.
			runtime.GC()
			b.Run(fmt.Sprintf("%s/Stream/r%d", tc.name, round), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sr, err := db.Stream(tree, exec.StreamOptions{EstQuery: q})
					if err != nil {
						b.Fatal(err)
					}
					rows, err := sr.Drain()
					if err != nil {
						b.Fatal(err)
					}
					if rows != r.ResultRows {
						b.Fatalf("streaming returned %d rows, want %d", rows, r.ResultRows)
					}
				}
				sec := b.Elapsed().Seconds() / float64(b.N)
				if sec < r.StreamSec {
					r.StreamSec = sec
				}
				if b.N < minN {
					minN = b.N
				}
				b.ReportMetric(r.Tuples/sec, "rows/s")
			})
			runtime.GC()
			b.Run(fmt.Sprintf("%s/Materialize/r%d", tc.name, round), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rel, err := db.ExecuteTree(tree)
					if err != nil {
						b.Fatal(err)
					}
					if rel.NumRows() != r.ResultRows {
						b.Fatalf("materializing returned %d rows, want %d", rel.NumRows(), r.ResultRows)
					}
				}
				sec := b.Elapsed().Seconds() / float64(b.N)
				if sec < r.MatSec {
					r.MatSec = sec
				}
				if b.N < minN {
					minN = b.N
				}
				b.ReportMetric(r.Tuples/sec, "rows/s")
			})
		}
		b.Run(tc.name+"/Feedback", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ares, err := db.ExecuteAdaptive(context.Background(), tree, exec.AdaptiveOptions{
					EstQuery:        q,
					QErrorThreshold: 2,
					Reoptimize:      reopt,
				})
				if err != nil {
					b.Fatal(err)
				}
				r.Reopts = ares.Reopts
				if ares.Trace.ResultRows != r.ResultRows {
					b.Fatalf("adaptive returned %d rows, want %d", ares.Trace.ResultRows, r.ResultRows)
				}
			}
			r.FeedbackSec = b.Elapsed().Seconds() / float64(b.N)
		})

		r.StreamRowsSec = r.Tuples / r.StreamSec
		r.MatRowsSec = r.Tuples / r.MatSec
		r.Speedup = r.MatSec / r.StreamSec
		out.Band[tc.name] = r
	}

	var tuples, streamSec, matSec float64
	for _, r := range out.Band {
		tuples += r.Tuples
		streamSec += r.StreamSec
		matSec += r.MatSec
	}
	out.BandStreamRowsSec = tuples / streamSec
	out.BandMatRowsSec = tuples / matSec
	// Single-iteration smoke runs (-benchtime=1x) are too noisy to judge;
	// the guard only fires when the framework actually ramped up.
	if minN > 1 && out.BandStreamRowsSec < out.BandMatRowsSec {
		b.Errorf("band streaming throughput %.0f rows/s below materializing %.0f rows/s",
			out.BandStreamRowsSec, out.BandMatRowsSec)
	}

	path := os.Getenv("BENCH_PR9_OUT")
	if path == "" {
		path = "BENCH_pr9.json"
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
}
