// Cache-layer benchmarks: hit latency against full solves, and the
// warm-start effect on anytime convergence (the serving scenario of the
// plan cache — repeated and statistics-drifted queries).
package milpjoin_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"testing"
	"time"

	"milpjoin/internal/workload"
	"milpjoin/joinorder"
	"milpjoin/joinorder/cache"
)

func benchCacheOpts() joinorder.Options {
	return joinorder.Options{Strategy: "milp", TimeLimit: 30 * time.Second, Threads: 2}
}

// mustCache builds a cache-fronted optimizer or fails the benchmark.
func mustCache(tb testing.TB, cfg cache.Config) *cache.Optimizer {
	tb.Helper()
	o, err := cache.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return o
}

// relabelQuery permutes table indices: table i becomes perm[i].
func relabelQuery(q *joinorder.Query, perm []int) *joinorder.Query {
	out := &joinorder.Query{Tables: make([]joinorder.Table, len(q.Tables))}
	for i, t := range q.Tables {
		out.Tables[perm[i]] = t
	}
	for _, p := range q.Predicates {
		np := p
		np.Tables = make([]int, len(p.Tables))
		for k, t := range p.Tables {
			np.Tables[k] = perm[t]
		}
		out.Predicates = append(out.Predicates, np)
	}
	return out
}

// BenchmarkCachedOptimize measures a repeated identical query through the
// cache: one solve up front, then pure hits (fingerprint + lookup + plan
// translation per iteration).
func BenchmarkCachedOptimize(b *testing.B) {
	o := mustCache(b, cache.Config{})
	q := workload.Generate(workload.Chain, 10, 1, workload.Config{})
	if _, err := o.Optimize(context.Background(), q, benchCacheOpts()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := o.Optimize(context.Background(), q, benchCacheOpts())
		if err != nil {
			b.Fatal(err)
		}
		if res.Plan == nil {
			b.Fatal("hit without plan")
		}
	}
	if o.Stats().Misses != 1 {
		b.Fatalf("expected pure hits, stats %+v", o.Stats())
	}
}

// BenchmarkCachedOptimizeRelabeled is the same loop over random
// isomorphic relabelings — every iteration pays full canonicalization and
// still must hit.
func BenchmarkCachedOptimizeRelabeled(b *testing.B) {
	o := mustCache(b, cache.Config{})
	q := workload.Generate(workload.Chain, 10, 1, workload.Config{})
	if _, err := o.Optimize(context.Background(), q, benchCacheOpts()); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rq := relabelQuery(q, rng.Perm(len(q.Tables)))
		if _, err := o.Optimize(context.Background(), rq, benchCacheOpts()); err != nil {
			b.Fatal(err)
		}
	}
	if o.Stats().Misses != 1 {
		b.Fatalf("relabeled queries missed: %+v", o.Stats())
	}
}

// BenchmarkUncachedOptimize is the comparison baseline: the same query
// solved from scratch every iteration.
func BenchmarkUncachedOptimize(b *testing.B) {
	q := workload.Generate(workload.Chain, 10, 1, workload.Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := joinorder.Optimize(context.Background(), q, benchCacheOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheSuite measures the two cache acceptance numbers end to
// end and writes them to BENCH_pr4.json (BENCH_STATS_OUT-style snapshot
// for CI artifacts):
//
//   - hit speedup: repeated identical queries must be ≥10× faster through
//     the cache than re-solving;
//   - warm-start convergence: on a 20-table star whose cardinalities
//     drifted since the cached solve, the warm-started solve must reach
//     the cold solve's final proven gap in less wall time than the cold
//     solve took.
func BenchmarkCacheSuite(b *testing.B) {
	type suite struct {
		CachedNsOp        float64 `json:"cached_ns_op"`
		UncachedNsOp      float64 `json:"uncached_ns_op"`
		Speedup           float64 `json:"speedup"`
		Star20Budget      float64 `json:"star20_budget_sec"`
		Star20ColdGap     float64 `json:"star20_cold_gap"`
		Star20WarmGap     float64 `json:"star20_warm_gap"`
		Star20WarmToCold  float64 `json:"star20_warm_time_to_cold_gap_sec"`
		Star20WarmStarted bool    `json:"star20_warm_started"`
	}
	var out suite
	for i := 0; i < b.N; i++ {
		// Hit latency vs solve latency on a 10-table chain.
		o := mustCache(b, cache.Config{})
		q := workload.Generate(workload.Chain, 10, 1, workload.Config{})
		start := time.Now()
		if _, err := o.Optimize(context.Background(), q, benchCacheOpts()); err != nil {
			b.Fatal(err)
		}
		out.UncachedNsOp = float64(time.Since(start).Nanoseconds())
		const hits = 50
		start = time.Now()
		for k := 0; k < hits; k++ {
			if _, err := o.Optimize(context.Background(), q, benchCacheOpts()); err != nil {
				b.Fatal(err)
			}
		}
		out.CachedNsOp = float64(time.Since(start).Nanoseconds()) / hits
		out.Speedup = out.UncachedNsOp / out.CachedNsOp

		// Warm-start convergence on the paper's hard shape: Star20.
		const budget = 2 * time.Second
		out.Star20Budget = budget.Seconds()
		star := workload.Generate(workload.Star, 20, 2, workload.Config{})
		opts := joinorder.Options{
			Strategy:  "milp",
			Precision: joinorder.PrecisionMedium,
			TimeLimit: budget,
			Threads:   2,
		}
		cold, err := joinorder.Optimize(context.Background(), star, opts)
		if err != nil {
			b.Fatal(err)
		}
		out.Star20ColdGap = cold.Gap

		wo := mustCache(b, cache.Config{})
		if _, err := wo.Optimize(context.Background(), star, opts); err != nil {
			b.Fatal(err)
		}
		drifted := &joinorder.Query{Tables: append([]joinorder.Table(nil), star.Tables...), Predicates: star.Predicates}
		for t := range drifted.Tables {
			drifted.Tables[t].Card *= 1.15
		}
		var timeToColdGap time.Duration
		wopts := opts
		wopts.OnEvent = func(ev joinorder.Event) {
			if timeToColdGap == 0 && ev.HasIncumbent && ev.Gap <= cold.Gap {
				timeToColdGap = ev.Elapsed
			}
		}
		warm, err := wo.Optimize(context.Background(), drifted, wopts)
		if err != nil {
			b.Fatal(err)
		}
		out.Star20WarmGap = warm.Gap
		out.Star20WarmStarted = wo.Stats().WarmStarts == 1
		if timeToColdGap == 0 {
			timeToColdGap = warm.Elapsed
		}
		out.Star20WarmToCold = timeToColdGap.Seconds()
	}
	b.ReportMetric(out.Speedup, "hit-speedup-x")
	b.ReportMetric(out.Star20ColdGap, "cold-gap")
	b.ReportMetric(out.Star20WarmGap, "warm-gap")
	b.ReportMetric(out.Star20WarmToCold, "warm-t2coldgap-s")

	if out.Speedup < 10 {
		b.Errorf("cache hit speedup %.1fx below the 10x acceptance bar", out.Speedup)
	}
	if !out.Star20WarmStarted {
		b.Error("drifted Star20 solve was not warm-started")
	}

	path := os.Getenv("BENCH_PR4_OUT")
	if path == "" {
		path = "BENCH_pr4.json"
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
}
